"""Metrics registry: counters, gauges, histograms + Prometheus rendering.

The registry is deliberately tiny and dependency-free.  Three metric
kinds cover everything the simulator and the serving layer need:

``Counter``
    Monotonically increasing float (``inc``).
``Gauge``
    Arbitrary float that can go up and down (``set``/``inc``/``dec``).
``Histogram``
    Fixed cumulative bucket layout (``observe``), rendered with
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` samples.

All three support Prometheus-style labels through ``labels(*values)``,
which returns a child metric bound to those label values.  ``render()``
produces the text exposition format (version 0.0.4) that ``GET
/metrics`` serves and Prometheus scrapes.

``NULL_REGISTRY`` is the disabled counterpart: every factory returns a
shared no-op metric and ``bool(NULL_REGISTRY)`` is ``False`` so call
sites can gate sampling work on a single truthiness check.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "render_merged",
]

# Seconds-scale buckets tuned for request handling and per-job wall time:
# sub-millisecond cache hits up to multi-second simulations.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_str(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared parent/child plumbing for labelled metrics."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], _Metric] = {}
        self._lock = threading.Lock()

    def labels(self, *values) -> "_Metric":
        values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label values, "
                f"got {len(values)}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = type(self)(self.name, self.help)
                # Child carries its bound values for rendering.
                child._labelvalues = values  # type: ignore[attr-defined]
                self._children[values] = child
            return child

    def _series(self):
        """Yield (labelvalues, child) for every concrete series."""
        if self.labelnames:
            with self._lock:
                items = list(self._children.items())
            for values, child in items:
                yield values, child
        else:
            yield (), self


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount

    def render_into(self, lines: list[str]) -> None:
        for values, child in self._series():
            lines.append(
                f"{self.name}{_label_str(self.labelnames, values)} "
                f"{_format_value(child.value)}"
            )


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def render_into(self, lines: list[str]) -> None:
        for values, child in self._series():
            lines.append(
                f"{self.name}{_label_str(self.labelnames, values)} "
                f"{_format_value(child.value)}"
            )


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), buckets=DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        # One slot per finite bucket plus the +Inf overflow slot.
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0

    def labels(self, *values):
        child = super().labels(*values)
        # Children created by the generic parent lack the bucket layout.
        if child.buckets != self.buckets:
            child.buckets = self.buckets
            child.counts = [0] * (len(self.buckets) + 1)
        return child

    def observe(self, value: float) -> None:
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def count(self) -> int:
        return sum(self.counts)

    def render_into(self, lines: list[str]) -> None:
        for values, child in self._series():
            cumulative = 0
            for bound, n in zip(child.buckets, child.counts):
                cumulative += n
                label = _label_str(
                    self.labelnames + ("le",), values + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{label} {cumulative}")
            cumulative += child.counts[-1]
            label = _label_str(self.labelnames + ("le",), values + ("+Inf",))
            lines.append(f"{self.name}_bucket{label} {cumulative}")
            plain = _label_str(self.labelnames, values)
            lines.append(f"{self.name}_sum{plain} {_format_value(child.sum)}")
            lines.append(f"{self.name}_count{plain} {cumulative}")


class MetricsRegistry:
    """Named metric store; one instance per subsystem (or one shared)."""

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return True

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, tuple(labelnames), **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name, help="", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name, help="", labelnames=(), buckets=DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def render(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            metric.render_into(lines)
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-safe dump of every metric family and concrete series.

        The multi-process server's workers publish these into the run
        store; whichever worker answers a ``/metrics`` scrape merges all
        fresh snapshots with :func:`render_merged`.
        """
        out: dict = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            family: dict = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.labelnames),
                "series": [],
            }
            if isinstance(metric, Histogram):
                family["buckets"] = list(metric.buckets)
            for values, child in metric._series():
                series: dict = {"labels": list(values)}
                if isinstance(metric, Histogram):
                    series["counts"] = list(child.counts)
                    series["sum"] = child.sum
                else:
                    series["value"] = child.value
                family["series"].append(series)
            out[metric.name] = family
        return out


def render_merged(snapshots: dict[str, dict]) -> str:
    """Merge per-worker registry snapshots into one text exposition.

    ``snapshots`` maps a worker name (``api-0``) to that worker's
    :meth:`MetricsRegistry.snapshot`.  Every series is re-emitted with a
    ``worker`` label appended, so nothing is summed away — Prometheus
    aggregates across workers at query time, and per-worker skew (a
    respawned worker's reset counters, one hot worker) stays visible.
    """
    lines: list[str] = []
    families: dict[str, dict] = {}
    order: list[str] = []
    for worker in sorted(snapshots):
        for name, family in snapshots[worker].items():
            if name not in families:
                families[name] = family
                order.append(name)
    for name in order:
        family = families[name]
        kind = family.get("kind", "untyped")
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for worker in sorted(snapshots):
            match = snapshots[worker].get(name)
            if match is None or match.get("kind") != kind:
                continue
            labelnames = tuple(match.get("labels", ()))
            for series in match.get("series", ()):
                values = tuple(str(v) for v in series.get("labels", ()))
                if kind == "histogram":
                    buckets = match.get("buckets", ())
                    counts = series.get("counts", ())
                    cumulative = 0
                    for bound, n in zip(buckets, counts):
                        cumulative += n
                        label = _label_str(
                            labelnames + ("worker", "le"),
                            values + (worker, _format_value(bound)),
                        )
                        lines.append(f"{name}_bucket{label} {cumulative}")
                    if len(counts) > len(buckets):
                        cumulative += counts[-1]
                    label = _label_str(
                        labelnames + ("worker", "le"), values + (worker, "+Inf")
                    )
                    lines.append(f"{name}_bucket{label} {cumulative}")
                    plain = _label_str(labelnames + ("worker",), values + (worker,))
                    lines.append(
                        f"{name}_sum{plain} "
                        f"{_format_value(float(series.get('sum', 0.0)))}"
                    )
                    lines.append(f"{name}_count{plain} {cumulative}")
                else:
                    label = _label_str(
                        labelnames + ("worker",), values + (worker,)
                    )
                    lines.append(
                        f"{name}{label} "
                        f"{_format_value(float(series.get('value', 0.0)))}"
                    )
    return "\n".join(lines) + "\n"


class _NullMetric:
    """Absorbs every metric operation; shared by all null-registry users."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def labels(self, *values):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """Disabled registry: falsy, returns shared no-op metrics."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def counter(self, name, help="", labelnames=()):
        return _NULL_METRIC

    def gauge(self, name, help="", labelnames=()):
        return _NULL_METRIC

    def histogram(self, name, help="", labelnames=(), buckets=()):
        return _NULL_METRIC

    def get(self, name):
        return None

    def render(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()
