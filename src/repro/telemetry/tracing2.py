"""End-to-end trace context: correlation ids + the merged Perfetto view.

A **trace id** is minted once at the edge (HTTP ingress honours an
``X-Repro-Trace-Id`` request header, otherwise a random id is drawn),
persisted on the durable ``jobs`` row, inherited by whichever sim-pool
process claims the job, and stamped into every event-log record along
the way.  It never enters a job's content key or the cached result blob
— results are content-addressed and shared across requests, so the
binding from trace id to result lives in the job row alone.

:func:`merge_job_trace` assembles the one-file Perfetto story for a run:

``pid 1`` — *serving (wall clock)*
    HTTP ingress instant, the queue-wait span (``submitted -> started``)
    and the claim/execute span (``started -> finished``, named after the
    owning worker), all in wall-clock microseconds relative to
    submission.
``pid 2`` — *simulation (cycle domain)*
    The run's cycle-domain span trace from the result blob
    (1 simulated cycle = 1 µs), untouched except for the pid move —
    the two time domains never share a track.
``pid 3`` — *event log*
    Matching structured-log records as instants, one track per emitting
    process, in the same wall-clock base as pid 1.

Every non-metadata event carries ``args.trace_id``; events are sorted so
timestamps are monotonic within each ``(pid, tid)`` track (the CI smoke
job asserts exactly that).
"""

from __future__ import annotations

import re
import secrets

__all__ = [
    "TRACE_HEADER",
    "is_trace_id",
    "merge_job_trace",
    "mint_trace_id",
]

#: request/response header carrying the correlation id.
TRACE_HEADER = "X-Repro-Trace-Id"

_TRACE_ID_RE = re.compile(r"[0-9a-f]{8,32}")

#: track ids on the serving (wall-clock) process.
_TID_HTTP, _TID_QUEUE, _TID_EXECUTE = 1, 2, 3


def is_trace_id(value) -> bool:
    """Whether ``value`` is a well-formed trace id (8-32 lowercase hex)."""
    return isinstance(value, str) and _TRACE_ID_RE.fullmatch(value) is not None


def mint_trace_id(requested: str | None = None) -> str:
    """A valid trace id: the (normalised) requested one, or a fresh draw."""
    if isinstance(requested, str):
        candidate = requested.strip().lower()
        if is_trace_id(candidate):
            return candidate
    return secrets.token_hex(8)


def _meta(pid: int, name: str, tid: int | None = None) -> dict:
    if tid is None:
        return {
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        }
    return {
        "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
        "args": {"name": name},
    }


def merge_job_trace(
    trace_id: str,
    *,
    job: dict | None = None,
    sim_trace: dict | None = None,
    events: list[dict] | tuple[dict, ...] = (),
    run_id: str | None = None,
) -> dict:
    """One Chrome-trace document covering a run's whole lifecycle.

    ``job`` is a jobs-table row dict (``submitted``/``started``/
    ``finished``/``owner``/...); ``sim_trace`` is the result blob's
    cycle-domain Chrome trace; ``events`` are event-log records already
    filtered to this trace id.  Any part may be missing — the merge
    renders whatever evidence exists.
    """
    metadata: list[dict] = [_meta(1, "serving (wall clock)")]
    merged: list[dict] = []

    # wall-clock base: submission when known, else the earliest event.
    t0 = None
    if job is not None and job.get("submitted") is not None:
        t0 = float(job["submitted"])
    elif events:
        t0 = min(float(e.get("ts", 0.0)) for e in events)

    def wall_us(t: float) -> float:
        return round((float(t) - (t0 or 0.0)) * 1e6, 3)

    if job is not None and job.get("submitted") is not None:
        metadata.append(_meta(1, "http ingress", _TID_HTTP))
        submitted = float(job["submitted"])
        merged.append({
            "name": "ingress", "ph": "i", "s": "p",
            "ts": wall_us(submitted), "pid": 1, "tid": _TID_HTTP,
            "args": {
                "job_id": job.get("job_id"),
                "state": job.get("state"),
                "cached": bool(job.get("cached")),
            },
        })
        started = job.get("started")
        if started is not None:
            metadata.append(_meta(1, "queue wait", _TID_QUEUE))
            merged.append({
                "name": "queue-wait", "ph": "X",
                "ts": wall_us(submitted),
                "dur": max(0.0, wall_us(started) - wall_us(submitted)),
                "pid": 1, "tid": _TID_QUEUE,
                "args": {"job_id": job.get("job_id")},
            })
            finished = job.get("finished")
            if finished is not None:
                owner = job.get("owner") or "worker"
                metadata.append(_meta(1, f"execute ({owner})", _TID_EXECUTE))
                merged.append({
                    "name": f"claim+run ({owner})", "ph": "X",
                    "ts": wall_us(started),
                    "dur": max(0.0, wall_us(finished) - wall_us(started)),
                    "pid": 1, "tid": _TID_EXECUTE,
                    "args": {
                        "job_id": job.get("job_id"),
                        "owner": owner,
                        "state": job.get("state"),
                    },
                })

    if sim_trace is not None:
        metadata.append(_meta(2, "simulation (cycle domain)"))
        for event in sim_trace.get("traceEvents", ()):
            if not isinstance(event, dict):
                continue
            moved = dict(event)
            moved["pid"] = 2
            if moved.get("ph") == "M":
                metadata.append(moved)
            else:
                merged.append(moved)

    if events:
        metadata.append(_meta(3, "event log"))
        tids: dict[str, int] = {}
        for record in events:
            proc = str(record.get("proc", "?"))
            tid = tids.get(proc)
            if tid is None:
                tid = tids[proc] = len(tids) + 1
                metadata.append(_meta(3, f"{proc} (pid {record.get('pid')})", tid))
            merged.append({
                "name": str(record.get("event", "event")), "ph": "i", "s": "t",
                "ts": wall_us(record.get("ts", 0.0)), "pid": 3, "tid": tid,
                "args": dict(record),
            })

    for event in merged:
        args = event.setdefault("args", {})
        if isinstance(args, dict):
            args["trace_id"] = trace_id
    # monotonic ts within each (pid, tid) track — validated downstream.
    merged.sort(key=lambda e: (e.get("pid", 0), e.get("tid", 0), e.get("ts", 0.0)))

    return {
        "traceEvents": metadata + merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": trace_id,
            "run_id": run_id,
            "time_convention": (
                "pid 1/3: wall-clock us since submission; "
                "pid 2: 1 simulated cycle = 1 us"
            ),
        },
    }
