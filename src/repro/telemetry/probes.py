"""Per-cycle processor probes and batch-engine instrumentation.

``ProcessorTelemetry`` is the object a :class:`~repro.core.processor.
Processor` calls once per simulated cycle (``on_cycle``).  It drives

* registry counters/gauges (cycles, retirements, flushes,
  reconfigurations, steering decisions, windowed IPC, slot occupancy),
* a :class:`~repro.telemetry.timeseries.SeriesBank` of downsampled
  per-cycle series (windowed IPC, slot occupancy, per-type demand vs.
  Eq. 1 availability, winning-configuration CEM error, RUU/queue depth),
* a :class:`~repro.telemetry.spans.SpanTracer` of cycle-domain spans
  (reconfiguration start→finish, steering decisions, flush episodes) and
  per-stage wall-clock profiling counters.

The disabled contract: a telemetry object whose registry is the null
registry and that carries no series bank, tracer, or stage profiling is
**inactive** (``active`` is ``False``); the processor normalises it to
``None``, so the hot loop pays exactly one truthiness check per cycle —
the same instruction stream as having passed no telemetry at all.

Sampling happens every ``sample_interval`` cycles; everything between
samples is O(1) counter arithmetic.
"""

from __future__ import annotations

from repro.isa.futypes import FU_TYPES
from repro.telemetry.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.spans import SpanTracer
from repro.telemetry.timeseries import SeriesBank

__all__ = ["ProcessorTelemetry", "STAGES"]

#: pipeline stages timed by the profiled step, in execution order.  The
#: RUU performs wake-up, select and execute in one pass, so they share a
#: timer; ``tick`` covers the fabric/RUU count-down advance.
STAGES = ("retire", "wakeup_select_execute", "dispatch", "fetch", "steer", "tick")


class ProcessorTelemetry:
    """Per-cycle instrumentation attached to one processor instance."""

    def __init__(
        self,
        registry: MetricsRegistry | NullRegistry | None = None,
        *,
        series: bool = True,
        series_capacity: int = 2048,
        sample_interval: int = 32,
        tracer: SpanTracer | None = None,
        profile_stages: bool = False,
        ledger=None,
    ) -> None:
        self.registry = MetricsRegistry() if registry is None else registry
        self.series: SeriesBank | None = (
            SeriesBank(series_capacity) if series else None
        )
        self.sample_interval = max(1, int(sample_interval))
        self.tracer = tracer
        self.profile_stages = bool(profile_stages)
        #: optional steering decision ledger
        #: (:class:`~repro.telemetry.ledger.DecisionLedger`).
        self.ledger = ledger

        r = self.registry
        self._cycles = r.counter(
            "repro_sim_cycles_total", "Simulated cycles executed."
        )
        self._retired = r.counter(
            "repro_sim_retired_total", "Instructions retired."
        )
        self._flush_episodes = r.counter(
            "repro_sim_flushes_total", "Pipeline flush episodes."
        )
        self._squashed = r.counter(
            "repro_sim_squashed_total", "Window entries squashed by flushes."
        )
        self._reconfigs = r.counter(
            "repro_sim_reconfigurations_total",
            "Partial reconfigurations started.",
        )
        self._decisions = r.counter(
            "repro_sim_steering_decisions_total",
            "Steering selection changes (winning candidate switched).",
        )
        self._ipc_gauge = r.gauge(
            "repro_sim_windowed_ipc", "IPC over the most recent sample window."
        )
        self._occupancy_gauge = r.gauge(
            "repro_sim_slot_occupancy",
            "Occupied fraction of the reconfigurable slot array.",
        )
        self._cem_gauge = r.gauge(
            "repro_sim_cem_error",
            "6-bit CEM error of the winning configuration.",
        )
        stage_counter = r.counter(
            "repro_sim_stage_seconds_total",
            "Wall-clock seconds spent per pipeline stage (profiled runs).",
            ("stage",),
        )
        self._stage_counters = {s: stage_counter.labels(s) for s in STAGES}
        self._stage_wall = {s: 0.0 for s in STAGES}
        self._stage_wall_at_sample = dict(self._stage_wall)

        # sampling / change-detection state
        self._since_sample = 0
        self._retired_at_sample = 0
        self._prev_selection: int | None = None
        self._prev_loads = 0

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def disabled(cls) -> "ProcessorTelemetry":
        """A fully inert instance; processors normalise it to ``None``."""
        return cls(registry=NULL_REGISTRY, series=False)

    @property
    def active(self) -> bool:
        """Whether attaching this object changes the simulation loop at all."""
        return (
            bool(self.registry)
            or self.series is not None
            or self.tracer is not None
            or self.profile_stages
            or self.ledger is not None
        )

    # ------------------------------------------------------------ hot hooks
    def on_cycle(self, proc, issued: int, retired: int, flushed: int) -> None:
        """Called by the processor at the end of every simulated cycle.

        ``proc.cycle_count`` still names the cycle just executed (the
        increment happens after this hook); fabric/RUU state is post-tick,
        matching ``snapshot_events``.
        """
        cycle = proc.cycle_count
        self._cycles.inc()
        if retired:
            self._retired.inc(retired)
        if flushed:
            self._flush_episodes.inc()
            self._squashed.inc(flushed)
            if self.tracer is not None:
                self.tracer.instant(
                    "flush", cycle, track="pipeline", squashed=flushed
                )
        manager = getattr(proc.policy, "manager", None)
        if manager is not None:
            selection = manager.last_selection
            if selection is not None and selection != self._prev_selection:
                self._decisions.inc()
                if self.tracer is not None:
                    self.tracer.instant(
                        "steer",
                        cycle,
                        track="steering",
                        selection=selection,
                        error=manager.last_error,
                    )
                self._prev_selection = selection
            loads = manager.stats.loads
            if loads != self._prev_loads:
                self._reconfigs.inc(loads - self._prev_loads)
                plan = manager.last_load
                if self.tracer is not None and plan is not None:
                    self.tracer.complete(
                        f"reconfig {plan.fu_type.short_name}@{plan.head}",
                        ts=cycle,
                        dur=max(1, plan.latency),
                        track="fabric",
                        evicted=[t.short_name for t in plan.evicted],
                    )
                self._prev_loads = loads
            if self.ledger is not None:
                self.ledger.on_cycle(proc, cycle, manager)
        self._since_sample += 1
        if self._since_sample >= self.sample_interval:
            self._sample(proc, cycle, manager)

    def stage_seconds(self, stage: str, seconds: float) -> None:
        """Accumulate wall time for one stage of one cycle (profiled step)."""
        self._stage_wall[stage] += seconds
        self._stage_counters[stage].inc(seconds)

    # ------------------------------------------------------------- sampling
    def _sample(self, proc, cycle: int, manager) -> None:
        interval = self._since_sample
        self._since_sample = 0

        retired_total = proc.ruu.retired
        ipc = (retired_total - self._retired_at_sample) / interval
        self._retired_at_sample = retired_total
        self._ipc_gauge.set(ipc)

        fabric = proc.fabric
        slots = fabric.rfus.slots
        occupied = 0
        reconfiguring = 0
        for slot in slots:
            if not slot.is_empty:
                occupied += 1
            if slot.is_reconfiguring:
                reconfiguring += 1
        occupancy = occupied / len(slots) if slots else 0.0
        self._occupancy_gauge.set(occupancy)
        if manager is not None:
            self._cem_gauge.set(manager.last_error)

        bank = self.series
        if bank is not None:
            bank.append("windowed_ipc", cycle, ipc)
            bank.append("slot_occupancy", cycle, occupancy)
            bank.append("reconfiguring_slots", cycle, reconfiguring)
            bank.append("ruu_depth", cycle, len(proc.ruu))
            ready = proc.ruu.ready_unscheduled()
            bank.append("ready_depth", cycle, len(ready))
            demand: dict = {}
            for instr in ready:
                demand[instr.fu_type] = demand.get(instr.fu_type, 0) + 1
            idle = fabric.idle_counts()
            bank.append("availability_bits", cycle, fabric.availability_bits())
            for t in FU_TYPES:
                bank.append(f"demand_{t.short_name}", cycle, demand.get(t, 0))
                bank.append(f"avail_{t.short_name}", cycle, idle[t])
            if manager is not None:
                bank.append("cem_error", cycle, manager.last_error)

        if self.profile_stages and self.tracer is not None:
            deltas = {
                s: (self._stage_wall[s] - self._stage_wall_at_sample[s]) * 1e6
                for s in STAGES
            }
            self.tracer.counter("stage_us", cycle, deltas, track="profile")
            self._stage_wall_at_sample = dict(self._stage_wall)

    # -------------------------------------------------------------- exports
    def snapshot(self) -> dict:
        """JSON-serialisable dump: the payload persisted with run results."""
        out = {
            "version": 1,
            "sample_interval": self.sample_interval,
            "series": self.series.to_dict() if self.series is not None else {},
        }
        if self.profile_stages:
            out["stage_wall_seconds"] = {
                s: round(v, 6) for s, v in self._stage_wall.items()
            }
        if self.tracer is not None:
            out["span_events"] = len(self.tracer)
            out["span_dropped"] = self.tracer.dropped
        if self.ledger is not None:
            out["decision_count"] = self.ledger.seen
        return out

    def summary_lines(self) -> list[str]:
        """Human-readable digest for the CLI."""
        lines = [
            f"cycles={int(self._cycles.value)}"
            f" retired={int(self._retired.value)}"
            f" flushes={int(self._flush_episodes.value)}"
            f" reconfigs={int(self._reconfigs.value)}"
            f" steer_decisions={int(self._decisions.value)}",
        ]
        if self.series is not None:
            kept = {n: len(self.series.series(n)) for n in self.series.names()}
            total = sum(kept.values())
            lines.append(
                f"series: {len(kept)} names, {total} points kept "
                f"(interval={self.sample_interval})"
            )
        if self.tracer is not None:
            lines.append(
                f"trace: {len(self.tracer)} events"
                + (f" ({self.tracer.dropped} dropped)" if self.tracer.dropped else "")
            )
        if self.profile_stages:
            total = sum(self._stage_wall.values())
            parts = ", ".join(
                f"{s}={self._stage_wall[s] / total:.0%}"
                for s in STAGES
                if total
            )
            lines.append(f"stage wall: {parts}" if parts else "stage wall: n/a")
        return lines
