"""Span tracing exported as Chrome trace-event JSON.

Events follow the trace-event format understood by Perfetto and
``chrome://tracing``: complete spans (``ph: "X"``), instant markers
(``ph: "i"``) and counter tracks (``ph: "C"``).  Timestamps are in
microseconds; for cycle-domain events the convention is **1 simulated
cycle = 1 µs**, so a reconfiguration with latency 8 renders as an 8 µs
span and the time axis reads directly in cycles.  Wall-clock events
(batch jobs) use real elapsed microseconds instead — they live on their
own named tracks so the two domains never share an axis.

The buffer is bounded: once ``max_events`` is reached the oldest events
are dropped (and counted in ``dropped``), keeping memory O(max_events)
for arbitrarily long runs.
"""

from __future__ import annotations

import json
from collections import deque

__all__ = ["SpanTracer"]


class SpanTracer:
    """Bounded collector of Chrome trace events on named tracks."""

    def __init__(self, max_events: int = 20_000):
        self.max_events = max_events
        self._events: deque[dict] = deque(maxlen=max_events)
        self._appended = 0
        self._tids: dict[str, int] = {}

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = self._tids[track] = len(self._tids) + 1
        return tid

    def _push(self, event: dict) -> None:
        self._events.append(event)
        self._appended += 1

    def complete(self, name: str, ts: float, dur: float, track: str = "sim", **args):
        """A span with a start and a duration (``ph: "X"``)."""
        event = {
            "name": name, "ph": "X", "ts": float(ts), "dur": float(dur),
            "pid": 1, "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._push(event)

    def instant(self, name: str, ts: float, track: str = "sim", **args):
        """A point-in-time marker (``ph: "i"``, thread scope)."""
        event = {
            "name": name, "ph": "i", "s": "t", "ts": float(ts),
            "pid": 1, "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._push(event)

    def counter(self, name: str, ts: float, values: dict, track: str = "sim"):
        """A counter-track sample (``ph: "C"``); Perfetto plots each key."""
        self._push({
            "name": name, "ph": "C", "ts": float(ts),
            "pid": 1, "tid": self._tid(track),
            "args": {k: float(v) for k, v in values.items()},
        })

    @property
    def dropped(self) -> int:
        return self._appended - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def to_chrome_trace(self) -> dict:
        """Full trace document: metadata naming each track + the events."""
        metadata = [
            {
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": track},
            }
            for track, tid in self._tids.items()
        ]
        return {
            "traceEvents": metadata + list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "dropped_events": self.dropped,
                "time_convention": "1 simulated cycle = 1 us on sim tracks",
            },
        }

    def dumps(self) -> str:
        return json.dumps(self.to_chrome_trace())

    def write(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)
