"""Structured JSON event log: canonical lines over stdlib ``logging``.

Every event is one canonical-JSON object (``repro.utils.canonical``) on
one line, so the sink files are greppable, diffable and machine-parsed
without a schema registry.  Each :class:`EventLog` owns

* a bounded in-memory ring (the newest ``capacity`` events, served by
  ``GET /api/logs`` when no file sink is configured),
* an optional JSONL **file sink** shared append-only by every process of
  one server (supervisor API workers and sim-pool workers all write the
  same file; O_APPEND line writes keep records intact),
* an optional stderr echo (``repro serve --verbose``).

The log is deliberately the *only* module in ``repro/serving`` +
``repro/telemetry`` allowed to talk to :mod:`logging` or a terminal —
the ``OBS001`` lint rule pins everything else to this funnel.

Canonical record shape (every event, extra fields allowed)::

    {"event": "job_claimed", "ts": 1754..., "pid": 4711,
     "proc": "sim-0", "trace": "9f2c4b1a6d03e857", ...}

``trace`` carries the request's correlation id (see
:mod:`repro.telemetry.tracing2`) whenever the emitting code knows it.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from collections import deque
from pathlib import Path

from repro.utils.canonical import canonical_dumps

__all__ = [
    "EventLog",
    "LOGGER_PREFIX",
    "events_path_for",
    "read_events",
]

#: instance loggers are named ``repro.events.<proc>``.
LOGGER_PREFIX = "repro.events"

#: default bound on the in-memory ring.
DEFAULT_RING_CAPACITY = 1024

#: hard bound on one serialized event line the file reader will accept.
MAX_LINE_BYTES = 64 * 1024


def events_path_for(store_path: str | os.PathLike | None) -> str | None:
    """The event-log sink that pairs with a run store file.

    ``runs.sqlite`` -> ``runs.sqlite.events.jsonl`` next to it, so the
    log travels with the store it describes; memory stores get no sink.
    """
    if store_path is None:
        return None
    text = str(store_path)
    if text == ":memory:":
        return None
    return text + ".events.jsonl"


class EventLog:
    """Bounded per-process event ring with optional file/stderr sinks."""

    def __init__(
        self,
        proc: str = "main",
        *,
        path: str | os.PathLike | None = None,
        capacity: int = DEFAULT_RING_CAPACITY,
        echo: bool = False,
    ) -> None:
        self.proc = proc
        self.path = str(path) if path is not None else None
        self._ring: deque[dict] = deque(maxlen=max(1, int(capacity)))
        self._emitted = 0
        # An instance-owned Logger (not logging.getLogger): handlers never
        # accumulate across instances sharing a name, which test suites
        # and respawned workers otherwise would.
        self._logger = logging.Logger(f"{LOGGER_PREFIX}.{proc}")
        self._logger.propagate = False
        if self.path is not None:
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
            # delay=True: the file appears on the first event, not on
            # construction — idle workers leave no empty sink behind.
            self._logger.addHandler(logging.FileHandler(self.path, delay=True))
        if echo:
            self._logger.addHandler(logging.StreamHandler(sys.stderr))

    # ---------------------------------------------------------------- emit
    def emit(self, event: str, *, trace: str | None = None, **fields) -> dict:
        """Record one event; returns the canonical record dict."""
        record = dict(fields)
        record["event"] = event
        record["ts"] = round(time.time(), 6)
        record["pid"] = os.getpid()
        record["proc"] = self.proc
        if trace:
            record["trace"] = trace
        line = canonical_dumps(record)
        self._ring.append(record)
        self._emitted += 1
        if self._logger.handlers:
            self._logger.info("%s", line)
        return record

    # --------------------------------------------------------------- reads
    def tail(
        self,
        limit: int = 100,
        *,
        trace: str | None = None,
        event: str | None = None,
    ) -> list[dict]:
        """Newest matching ring events, oldest first."""
        out: deque[dict] = deque(maxlen=max(1, int(limit)))
        for record in self._ring:
            if trace is not None and record.get("trace") != trace:
                continue
            if event is not None and record.get("event") != event:
                continue
            out.append(record)
        return list(out)

    @property
    def emitted(self) -> int:
        """Total events emitted by this instance (ring may hold fewer)."""
        return self._emitted

    def __len__(self) -> int:
        return len(self._ring)

    def close(self) -> None:
        for handler in list(self._logger.handlers):
            self._logger.removeHandler(handler)
            handler.close()


def read_events(
    path: str | os.PathLike,
    *,
    trace: str | None = None,
    event: str | None = None,
    limit: int = 200,
) -> list[dict]:
    """Newest matching events from a JSONL sink, oldest first.

    Bounded: keeps at most ``limit`` records while scanning, skips
    malformed or oversized lines (a torn write from a dying process must
    not take the API endpoint down), returns ``[]`` for a missing file.
    """
    out: deque[dict] = deque(maxlen=max(1, int(limit)))
    try:
        fh = open(path, encoding="utf-8", errors="replace")
    except OSError:
        return []
    with fh:
        for line in fh:
            if len(line) > MAX_LINE_BYTES:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            if trace is not None and record.get("trace") != trace:
                continue
            if event is not None and record.get("event") != event:
                continue
            out.append(record)
    return list(out)
