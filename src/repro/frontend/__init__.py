"""Front-end fixed modules of the architecture (Fig. 1).

Separate instruction and data memories (the paper's Harvard organisation),
the instruction fetch unit with a 2-bit branch predictor and BTB, the trace
cache that lets fetch run past a predicted-taken branch in a single cycle,
and the decoder stage.
"""

from repro.frontend.branch import BranchPredictor, BTB
from repro.frontend.decode import DecodeStage
from repro.frontend.fetch import FetchedInstruction, FetchUnit
from repro.frontend.memory import DataMemory, InstructionMemory
from repro.frontend.trace_cache import TraceCache

__all__ = [
    "BranchPredictor",
    "BTB",
    "DecodeStage",
    "FetchUnit",
    "FetchedInstruction",
    "DataMemory",
    "InstructionMemory",
    "TraceCache",
]
