"""The trace cache (a Fig. 1 fixed module).

Holds instruction *traces* — short sequences of PCs along a previously
observed path — so that fetch can continue past a predicted-taken branch
within a single cycle.  Without a hit, a fetch packet ends at the first
predicted-taken control instruction; with a hit the packet follows the
cached continuation up to the full fetch width.

The cache is direct-lookup on the trace's start PC with FIFO eviction.
Traces are validated against the current predictor state at fetch time, so
a stale trace simply yields a shorter packet, never a wrong-path fetch
beyond ordinary misprediction.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["TraceCache"]


class TraceCache:
    """start PC -> tuple of successor PCs observed on the hot path."""

    def __init__(self, capacity: int = 64, max_trace: int = 16) -> None:
        if capacity <= 0:
            raise SimulationError(f"trace cache capacity must be positive: {capacity}")
        if max_trace <= 0:
            raise SimulationError(f"trace length must be positive: {max_trace}")
        self.capacity = capacity
        self.max_trace = max_trace
        self._lines: dict[int, tuple[int, ...]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> tuple[int, ...] | None:
        """The cached continuation starting at ``pc``, if any."""
        line = self._lines.get(pc)
        if line is None:
            self.misses += 1
        else:
            self.hits += 1
        return line

    def insert(self, pc: int, trace: tuple[int, ...]) -> None:
        """Record the path observed from ``pc`` (truncated to max length)."""
        trace = tuple(trace[: self.max_trace])
        if not trace:
            return
        if pc not in self._lines and len(self._lines) >= self.capacity:
            self._lines.pop(next(iter(self._lines)))
        self._lines[pc] = trace

    def invalidate(self) -> None:
        self._lines.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._lines)
