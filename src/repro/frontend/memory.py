"""Instruction and data memories (the paper's separate fixed modules).

The instruction memory is word-addressed (the PC counts instructions) and
backed by the program's binary encoding, so the simulated processor really
does fetch and decode legacy machine words.  The data memory is
byte-addressed with natural-alignment checking.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.program import Program

__all__ = ["InstructionMemory", "DataMemory"]


class InstructionMemory:
    """Word-addressed read-only instruction store."""

    def __init__(self, program: Program) -> None:
        # encode+decode of an assembled program is pure, so the binary and
        # its decode are cached on the program object: a batch of N
        # processors over one shared program (the vector engine's lanes,
        # in-process run_many) decodes once and shares the Instruction
        # objects — and with them their warmed spec-derived caches.
        cached = getattr(program, "_imem_cache", None)
        if cached is None:
            words = program.to_binary()
            cached = (words, [decode(w) for w in words])
            program._imem_cache = cached
        self._words, self._decoded = cached

    def __len__(self) -> int:
        return len(self._words)

    def in_range(self, pc: int) -> bool:
        return 0 <= pc < len(self._words)

    def word(self, pc: int) -> int:
        """The raw 32-bit word at ``pc``."""
        if not self.in_range(pc):
            raise SimulationError(f"instruction fetch out of range: pc={pc}")
        return self._words[pc]

    def fetch(self, pc: int) -> Instruction:
        """The decoded instruction at ``pc``."""
        if not self.in_range(pc):
            raise SimulationError(f"instruction fetch out of range: pc={pc}")
        return self._decoded[pc]


class DataMemory:
    """Byte-addressed data store with natural alignment."""

    def __init__(self, size: int = 1 << 20, image: bytes | bytearray = b"") -> None:
        if size <= 0:
            raise SimulationError(f"data memory size must be positive, got {size}")
        if len(image) > size:
            raise SimulationError(
                f"initial image ({len(image)} bytes) exceeds memory size {size}"
            )
        self.size = size
        self._mem = bytearray(size)
        self._mem[: len(image)] = image
        self.reads = 0
        self.writes = 0

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise SimulationError(
                f"data access out of range: addr={addr:#x} size={nbytes}"
            )
        # natural alignment is enforced for real access widths; bulk peeks
        # (e.g. comparing whole regions in tests) are exempt
        if nbytes in (2, 4, 8) and addr % nbytes:
            raise SimulationError(
                f"misaligned {nbytes}-byte access at addr={addr:#x}"
            )

    def load(self, addr: int, nbytes: int) -> bytes:
        self._check(addr, nbytes)
        self.reads += 1
        return bytes(self._mem[addr : addr + nbytes])

    def store(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self.writes += 1
        self._mem[addr : addr + len(data)] = data

    def peek(self, addr: int, nbytes: int) -> bytes:
        """Read without counting (for result checking in tests/examples)."""
        self._check(addr, nbytes)
        return bytes(self._mem[addr : addr + nbytes])

    def peek_word(self, addr: int) -> int:
        import struct

        return struct.unpack("<I", self.peek(addr, 4))[0]

    def peek_float(self, addr: int) -> float:
        import struct

        return struct.unpack("<f", self.peek(addr, 4))[0]
