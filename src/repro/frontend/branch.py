"""Branch prediction: 2-bit saturating counters plus a branch target buffer.

Conditional-branch and JAL targets are computable at fetch (PC-relative),
so the BTB is only consulted for indirect jumps (``jalr``).  The predictor
is direct-mapped on the low PC bits, the textbook design.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["BranchPredictor", "BTB"]

# 2-bit counter states: 0,1 predict not-taken; 2,3 predict taken.
_WEAK_NOT_TAKEN = 1
_TAKEN_THRESHOLD = 2
_MAX_STATE = 3


class BranchPredictor:
    """Direct-mapped table of 2-bit saturating counters."""

    def __init__(self, entries: int = 256) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise SimulationError(f"predictor entries must be a power of two: {entries}")
        self._mask = entries - 1
        self._table = [_WEAK_NOT_TAKEN] * entries
        self.lookups = 0
        self.updates = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        self.lookups += 1
        return self._table[pc & self._mask] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool, mispredicted: bool = False) -> None:
        """Train the counter with the resolved direction."""
        self.updates += 1
        if mispredicted:
            self.mispredictions += 1
        i = pc & self._mask
        if taken:
            self._table[i] = min(_MAX_STATE, self._table[i] + 1)
        else:
            self._table[i] = max(0, self._table[i] - 1)

    @property
    def accuracy(self) -> float:
        """Fraction of updated branches that were predicted correctly."""
        if not self.updates:
            return 1.0
        return 1.0 - self.mispredictions / self.updates


class BTB:
    """Branch target buffer for indirect jumps: pc -> last-seen target."""

    def __init__(self, entries: int = 64) -> None:
        if entries <= 0:
            raise SimulationError(f"BTB entries must be positive: {entries}")
        self.entries = entries
        self._map: dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def predict(self, pc: int) -> int | None:
        target = self._map.get(pc)
        if target is None:
            self.misses += 1
        else:
            self.hits += 1
        return target

    def update(self, pc: int, target: int) -> None:
        if pc not in self._map and len(self._map) >= self.entries:
            # evict the oldest entry (insertion order)
            self._map.pop(next(iter(self._map)))
        self._map[pc] = target
