"""The decode stage: a one-cycle buffer between fetch and dispatch.

Instructions arrive pre-decoded (the fetch model decodes the memory word),
so this stage models the pipeline latency and the decode-width limit, and
gives the configuration manager's unit decoders their tap point.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.frontend.fetch import FetchedInstruction

__all__ = ["DecodeStage"]


class DecodeStage:
    """Bounded FIFO of fetched instructions awaiting dispatch."""

    def __init__(self, width: int = 4, capacity: int = 16) -> None:
        if width <= 0 or capacity <= 0:
            raise SimulationError("decode width and capacity must be positive")
        self.width = width
        self.capacity = capacity
        self._buffer: deque[FetchedInstruction] = deque()
        self.decoded = 0

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def free_space(self) -> int:
        return self.capacity - len(self._buffer)

    def can_accept(self, n: int) -> bool:
        return n <= self.free_space

    def push(self, packet: list[FetchedInstruction]) -> None:
        """Accept a fetch packet (caller must check :meth:`can_accept`)."""
        if not self.can_accept(len(packet)):
            raise SimulationError(
                f"decode buffer overflow: {len(packet)} into {self.free_space} free"
            )
        self._buffer.extend(packet)

    def pop(self, limit: int | None = None) -> list[FetchedInstruction]:
        """Drain up to ``min(width, limit)`` instructions for dispatch."""
        n = self.width if limit is None else min(self.width, limit)
        out = []
        while self._buffer and len(out) < n:
            out.append(self._buffer.popleft())
        self.decoded += len(out)
        return out

    def flush(self) -> int:
        """Discard everything (mispredict recovery).  Returns count dropped."""
        n = len(self._buffer)
        self._buffer.clear()
        return n
