"""The instruction fetch unit.

Each cycle the fetch unit produces a *packet* of up to ``width``
instructions along the predicted path:

* sequential instructions extend the packet;
* a predicted-taken control instruction normally ends the packet — unless
  the trace cache knows the target is on a hot path, in which case the
  packet continues at the target within the same cycle;
* ``jalr`` targets come from the BTB (a miss predicts fall-through and is
  repaired at execute);
* ``halt`` ends the packet and stalls fetch until a redirect.

The unit never executes anything: mispredictions are discovered by the
back end, which calls :meth:`FetchUnit.redirect`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.branch import BTB, BranchPredictor
from repro.frontend.memory import InstructionMemory
from repro.frontend.trace_cache import TraceCache
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

__all__ = ["FetchedInstruction", "FetchUnit"]


@dataclass(frozen=True)
class FetchedInstruction:
    """One instruction flowing down the pipeline with its prediction."""

    pc: int
    instruction: Instruction
    #: PC the fetch unit continued at (the prediction to validate).
    predicted_next: int
    #: True when the prediction was 'taken' (control instructions only).
    predicted_taken: bool = False


class FetchUnit:
    """Predicted-path fetch with trace-cache packet extension."""

    def __init__(
        self,
        imem: InstructionMemory,
        predictor: BranchPredictor | None = None,
        btb: BTB | None = None,
        trace_cache: TraceCache | None = None,
        width: int = 4,
        entry: int = 0,
    ) -> None:
        self.imem = imem
        self.predictor = predictor if predictor is not None else BranchPredictor()
        self.btb = btb if btb is not None else BTB()
        self.trace_cache = trace_cache
        self.width = width
        self.pc = entry
        self._stalled = False
        self.packets = 0
        self.fetched = 0

    # ------------------------------------------------------------- control
    def redirect(self, pc: int) -> None:
        """Point fetch at the corrected path (mispredict repair)."""
        self.pc = pc
        self._stalled = False

    @property
    def stalled(self) -> bool:
        return self._stalled

    # -------------------------------------------------------------- fetch
    def _predict(self, pc: int, instr: Instruction) -> tuple[int, bool]:
        """(predicted_next, predicted_taken) for the instruction at ``pc``."""
        op = instr.opcode
        if op is Opcode.JAL:
            return pc + instr.imm, True
        if op is Opcode.JALR:
            target = self.btb.predict(pc)
            if target is None:
                return pc + 1, False
            return target, True
        if instr.is_branch:
            if self.predictor.predict(pc):
                return pc + instr.imm, True
            return pc + 1, False
        return pc + 1, False

    def fetch_packet(self) -> list[FetchedInstruction]:
        """Fetch up to ``width`` instructions along the predicted path."""
        if self._stalled:
            return []
        packet: list[FetchedInstruction] = []
        pc = self.pc
        while len(packet) < self.width:
            if not self.imem.in_range(pc):
                self._stalled = True
                break
            instr = self.imem.fetch(pc)
            predicted_next, taken = self._predict(pc, instr)
            packet.append(
                FetchedInstruction(
                    pc=pc,
                    instruction=instr,
                    predicted_next=predicted_next,
                    predicted_taken=taken,
                )
            )
            if instr.is_halt:
                self._stalled = True
                pc = predicted_next
                break
            if taken:
                # a taken control transfer ends the packet unless the trace
                # cache marks the target as a known hot path
                pc = predicted_next
                if self.trace_cache is None:
                    break
                if self.trace_cache.lookup(pc) is None:
                    self.trace_cache.insert(pc, (pc,))
                    break
                continue
            pc = predicted_next
        self.pc = pc
        if packet:
            self.packets += 1
            self.fetched += len(packet)
        return packet
