"""The reconfigurable slot array and the partial-reconfiguration mechanism.

Eight slots hold functional units; a unit occupies ``slot_cost`` contiguous
slots with its head in the lowest-indexed one.  Slots are reloaded through a
single configuration bus (the Fig. 1 "Configuration Bus"; real devices
serialise partial reconfiguration through one configuration port), so one
unit reconfigures at a time and loading a unit occupies the bus for
``reconfig_latency * slot_cost`` cycles.

Rules enforced here (the paper's §3.2):

* a slot whose unit is executing a multi-cycle instruction cannot be
  reconfigured until the instruction retires;
* reconfiguring over an idle unit evicts it (all of its slots empty);
* a unit under reconfiguration is not part of the active configuration —
  it appears in no counts and provides no availability until loading
  completes.

Two reconfiguration *flows* are modelled, after the paper's reference [8]
(Xilinx XAPP290, "Two Flows for Partial Reconfiguration: Module Based or
Difference Based"):

* ``"module"`` (default) — every load writes the target region's full
  bitstream: cost = ``reconfig_latency x slot_cost``;
* ``"difference"`` — only the frames that differ are written; replacing a
  unit with one of the *same* type is free-ish (one cycle), related units
  (same integer/floating family) cost half, unrelated units full price.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FabricError
from repro.fabric.allocation import AllocationVector
from repro.fabric.units import FunctionalUnit
from repro.isa.futypes import FUType

__all__ = ["Slot", "RfuSlotArray"]

#: the integer-side unit family for difference-based cost estimation.
_INT_FAMILY = frozenset({FUType.INT_ALU, FUType.INT_MDU, FUType.LSU})


@dataclass(slots=True)
class Slot:
    """State of one reconfigurable slot."""

    index: int
    #: the unit headed here (None for empty, span and reconfiguring slots).
    unit: FunctionalUnit | None = None
    #: head slot index if this slot is a continuation of a multi-slot unit.
    span_of: int | None = None
    #: type being loaded into this slot group (head slot only).
    pending_type: FUType | None = None
    #: head slot of an in-progress reconfiguration covering this slot.
    pending_span_of: int | None = None

    @property
    def is_empty(self) -> bool:
        return (
            self.unit is None
            and self.span_of is None
            and self.pending_type is None
            and self.pending_span_of is None
        )

    @property
    def is_reconfiguring(self) -> bool:
        return self.pending_type is not None or self.pending_span_of is not None


class RfuSlotArray:
    """The array of reconfigurable slots plus the configuration bus."""

    RECONFIG_MODES = ("module", "difference")

    def __init__(
        self,
        n_slots: int = 8,
        reconfig_latency: int = 16,
        reconfig_mode: str = "module",
    ) -> None:
        if n_slots <= 0:
            raise FabricError(f"slot count must be positive, got {n_slots}")
        if reconfig_latency <= 0:
            raise FabricError(f"reconfig latency must be positive, got {reconfig_latency}")
        if reconfig_mode not in self.RECONFIG_MODES:
            raise FabricError(
                f"reconfig mode must be one of {self.RECONFIG_MODES}, got {reconfig_mode!r}"
            )
        self.n_slots = n_slots
        self.reconfig_latency = reconfig_latency
        self.reconfig_mode = reconfig_mode
        self.slots: list[Slot] = [Slot(i) for i in range(n_slots)]
        self._bus_remaining = 0
        self._bus_target: int | None = None  # head slot being loaded
        #: total reconfigurations performed (for statistics).
        self.reconfigurations = 0
        #: total cycles the bus has been busy (for statistics).
        self.bus_busy_cycles = 0
        #: bumped whenever the set of configured units changes (a unit is
        #: loaded or evicted) — the availability cache's invalidation key.
        self.structure_version = 0

    # ------------------------------------------------------------- queries
    @property
    def bus_free(self) -> bool:
        """True when the configuration bus can accept a new load."""
        return self._bus_remaining == 0

    def head_of(self, index: int) -> int | None:
        """Head slot index of the unit occupying ``index``, if any."""
        slot = self.slots[index]
        if slot.unit is not None:
            return index
        return slot.span_of

    def units(self) -> list[tuple[int, FunctionalUnit]]:
        """``(head_slot, unit)`` for every configured unit."""
        out: list[tuple[int, FunctionalUnit]] = []
        for s in self.slots:
            if s.unit is not None:
                out.append((s.index, s.unit))
        return out

    def units_of_type(self, fu_type: FUType) -> list[FunctionalUnit]:
        return [u for _, u in self.units() if u.fu_type is fu_type]

    def counts(self) -> dict[FUType, int]:
        """Configured (loaded, usable) units per type."""
        out: dict[FUType, int] = {}
        for _, u in self.units():
            out[u.fu_type] = out.get(u.fu_type, 0) + 1
        return out

    def pending_counts(self) -> dict[FUType, int]:
        """Units currently being loaded, per type."""
        out: dict[FUType, int] = {}
        for s in self.slots:
            if s.pending_type is not None:
                out[s.pending_type] = out.get(s.pending_type, 0) + 1
        return out

    def allocation_vector(self) -> AllocationVector:
        """The Table 2 resource-allocation vector of the *active* contents."""
        placements = {i: u.fu_type for i, u in self.units()}
        return AllocationVector.from_units(self.n_slots, placements)

    def slot_busy(self, index: int) -> bool:
        """True if the slot belongs to a unit that is executing."""
        head = self.head_of(index)
        if head is None:
            return False
        unit = self.slots[head].unit
        return unit is not None and not unit.available

    def range_reconfigurable(self, head: int, fu_type: FUType) -> bool:
        """Can a ``fu_type`` unit be loaded with its head at ``head`` now?

        Requires the bus to be free and every covered slot to be idle
        (empty, or holding an idle unit that would be evicted) and not
        already under reconfiguration.
        """
        cost = fu_type.slot_cost
        if head < 0 or head + cost > self.n_slots:
            return False
        if not self.bus_free:
            return False
        covered = set(range(head, head + cost))
        # evicting part of a unit destroys all of it; every slot of every
        # overlapped unit must be idle, and so must trailing spans.
        for i in covered:
            slot = self.slots[i]
            if slot.is_reconfiguring:
                return False
            if self.slot_busy(i):
                return False
        return True

    # ------------------------------------------------------------ mutation
    def begin_reconfigure(self, head: int, fu_type: FUType) -> int:
        """Start loading a ``fu_type`` unit headed at ``head``.

        Evicts any idle units overlapping the target range.  Returns the
        number of cycles until the unit becomes usable.  Raises
        :class:`FabricError` if the load is not currently possible.
        """
        if not self.range_reconfigurable(head, fu_type):
            raise FabricError(
                f"cannot load {fu_type.short_name} at slot {head}: "
                "range busy, reconfiguring, out of bounds or bus occupied"
            )
        cost = fu_type.slot_cost
        latency = self._load_latency(head, fu_type)
        # evict every unit overlapping [head, head+cost)
        for i in range(head, head + cost):
            h = self.head_of(i)
            if h is not None:
                self._remove_unit(h)
        target = self.slots[head]
        target.pending_type = fu_type
        for i in range(head + 1, head + cost):
            self.slots[i].pending_span_of = head
        self._bus_remaining = latency
        self._bus_target = head
        self.reconfigurations += 1
        return latency

    def _load_latency(self, head: int, fu_type: FUType) -> int:
        """Configuration-bus cycles for this load under the active flow."""
        full = self.reconfig_latency * fu_type.slot_cost
        if self.reconfig_mode == "module":
            return full
        # difference-based: scale by how different the incumbent is
        incumbent_head = self.head_of(head)
        incumbent = (
            self.slots[incumbent_head].unit.fu_type
            if incumbent_head is not None
            else None
        )
        if incumbent is None:
            return full  # empty region: whole bitstream must be written
        if incumbent is fu_type:
            return 1  # identical module: nothing but control frames differ
        same_family = (incumbent in _INT_FAMILY) == (fu_type in _INT_FAMILY)
        return max(1, full // 2) if same_family else full

    def _remove_unit(self, head: int) -> None:
        unit = self.slots[head].unit
        if unit is None:
            raise FabricError(f"no unit headed at slot {head}")
        if not unit.available:
            raise FabricError(f"cannot evict busy unit at slot {head}")
        cost = unit.fu_type.slot_cost
        self.slots[head].unit = None
        for i in range(head + 1, head + cost):
            self.slots[i].span_of = None
        self.structure_version += 1

    def tick(self) -> None:
        """Advance one cycle: unit execution and the configuration bus."""
        for s in self.slots:
            if s.unit is not None:
                s.unit.tick()
        self.tick_bus()

    def tick_bus(self) -> None:
        """Advance the configuration bus only.

        Split out for engines that retire unit count-downs by event (the
        vector engine's batched timers) but still clock the configuration
        bus every cycle.
        """
        if self._bus_remaining > 0:
            self._bus_remaining -= 1
            self.bus_busy_cycles += 1
            if self._bus_remaining == 0:
                self._complete_load()

    def _complete_load(self) -> None:
        head = self._bus_target
        if head is None:  # pragma: no cover - defensive
            raise FabricError("configuration bus finished with no target")
        slot = self.slots[head]
        fu_type = slot.pending_type
        if fu_type is None:  # pragma: no cover - defensive
            raise FabricError(f"slot {head} finished loading with no pending type")
        slot.pending_type = None
        slot.unit = FunctionalUnit(fu_type, fixed=False)
        for i in range(head + 1, head + fu_type.slot_cost):
            self.slots[i].pending_span_of = None
            self.slots[i].span_of = head
        self._bus_target = None
        self.structure_version += 1
