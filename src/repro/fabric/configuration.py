"""Processor configurations and the Table 1 steering basis.

A :class:`Configuration` is a multiset of functional-unit counts.  The
architecture provides three *predefined steering configurations* that each
fill the eight reconfigurable slots exactly, plus the fixed units (one of
each type).  The counts are the DESIGN.md reconstruction of Table 1 (the
OCR of the paper drops the numerals): an integer-, a memory- and a
floating-point-oriented basis designed to be roughly orthogonal, as §5 of
the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.isa.futypes import FU_TYPES, FUType

__all__ = [
    "Configuration",
    "NUM_RFU_SLOTS",
    "FFU_COUNTS",
    "CONFIG_INTEGER",
    "CONFIG_MEMORY",
    "CONFIG_FLOATING",
    "PREDEFINED_CONFIGS",
    "steering_table",
]

#: Number of reconfigurable slots in the fabric (the paper's eight).
NUM_RFU_SLOTS = 8


@dataclass(frozen=True)
class Configuration:
    """Unit counts of one processor configuration (RFU portion only).

    ``counts`` maps each :class:`FUType` to how many units of that type the
    configuration provides in the reconfigurable fabric; types absent from
    the mapping provide zero.
    """

    name: str
    counts: dict[FUType, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for t, n in self.counts.items():
            if not isinstance(t, FUType):
                raise ConfigurationError(f"{self.name}: bad unit type {t!r}")
            if n < 0:
                raise ConfigurationError(f"{self.name}: negative count for {t.name}")

    def count(self, fu_type: FUType) -> int:
        return self.counts.get(fu_type, 0)

    @property
    def slot_usage(self) -> int:
        """Total reconfigurable slots this configuration occupies."""
        return sum(t.slot_cost * n for t, n in self.counts.items())

    def validate(self, n_slots: int = NUM_RFU_SLOTS) -> "Configuration":
        """Raise :class:`ConfigurationError` if the slot budget is exceeded."""
        if self.slot_usage > n_slots:
            raise ConfigurationError(
                f"{self.name}: needs {self.slot_usage} slots, only {n_slots} available"
            )
        return self

    def unit_list(self) -> list[FUType]:
        """The units as a flat list, in canonical type order."""
        out: list[FUType] = []
        for t in FU_TYPES:
            out.extend([t] * self.count(t))
        return out

    def total_with_ffus(self, fu_type: FUType) -> int:
        """Units of ``fu_type`` available when this configuration is loaded,
        including the fixed unit."""
        return self.count(fu_type) + FFU_COUNTS.get(fu_type, 0)

    def as_vector(self) -> tuple[int, ...]:
        """Counts as a tuple in canonical :data:`FU_TYPES` order."""
        return tuple(self.count(t) for t in FU_TYPES)

    def __str__(self) -> str:
        inner = ", ".join(
            f"{t.short_name}x{n}" for t, n in self.counts.items() if n
        )
        return f"{self.name}({inner})"


#: Fixed functional units: one of each type, always present (Table 1).
FFU_COUNTS: dict[FUType, int] = {t: 1 for t in FU_TYPES}

# The three predefined steering configurations (Table 1 reconstruction).
# Each fills the 8 slots exactly: see DESIGN.md.
CONFIG_INTEGER = Configuration(
    "integer", {FUType.INT_ALU: 4, FUType.INT_MDU: 2}
).validate()
CONFIG_MEMORY = Configuration(
    "memory", {FUType.INT_ALU: 2, FUType.INT_MDU: 1, FUType.LSU: 4}
).validate()
CONFIG_FLOATING = Configuration(
    "floating",
    {FUType.INT_ALU: 1, FUType.LSU: 1, FUType.FP_ALU: 1, FUType.FP_MDU: 1},
).validate()

#: Steering configurations 1-3; index 0 is reserved for "current".
PREDEFINED_CONFIGS: tuple[Configuration, ...] = (
    CONFIG_INTEGER,
    CONFIG_MEMORY,
    CONFIG_FLOATING,
)


def steering_table(configs: tuple[Configuration, ...] = PREDEFINED_CONFIGS) -> str:
    """Render Table 1: units per configuration, fixed and reconfigurable."""
    header = ["Configuration".ljust(20)] + [t.short_name.rjust(6) for t in FU_TYPES]
    header.append("  slots")
    lines = ["".join(header)]
    ffu_row = ["FFUs".ljust(20)] + [
        str(FFU_COUNTS.get(t, 0)).rjust(6) for t in FU_TYPES
    ]
    lines.append("".join(ffu_row) + "      -")
    for i, cfg in enumerate(configs, start=1):
        row = [f"Config {i} ({cfg.name})".ljust(20)]
        row += [str(cfg.count(t)).rjust(6) for t in FU_TYPES]
        row.append(str(cfg.slot_usage).rjust(7))
        lines.append("".join(row))
    return "\n".join(lines)
