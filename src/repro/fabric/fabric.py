"""The complete execution fabric: fixed units + reconfigurable slots.

This is the object the scheduler and the configuration manager share.  It
answers three questions every cycle:

* *what is configured?* — unit counts including the fixed bank (the
  "number of units of each type currently configured" input of Fig. 2);
* *what is available?* — the Eq. 1 availability per type, feeding the
  wake-up array's resource-available lines;
* *which unit executes this instruction?* — allocation of an idle unit of
  the required type.
"""

from __future__ import annotations

from repro.errors import FabricError
from repro.fabric.allocation import AllocationVector
from repro.fabric.availability import AvailabilityCache
from repro.fabric.availability import available as _eq1_available
from repro.fabric.configuration import FFU_COUNTS
from repro.fabric.slots import RfuSlotArray
from repro.fabric.units import FfuBank, FunctionalUnit
from repro.isa.futypes import FU_TYPES, FUType

__all__ = ["Fabric"]


class Fabric:
    """Fixed functional units plus the reconfigurable slot array."""

    def __init__(
        self,
        n_slots: int = 8,
        reconfig_latency: int = 16,
        ffu_counts: dict[FUType, int] | None = None,
        reconfig_mode: str = "module",
    ) -> None:
        self.ffus = FfuBank(FFU_COUNTS if ffu_counts is None else ffu_counts)
        self.rfus = RfuSlotArray(
            n_slots=n_slots,
            reconfig_latency=reconfig_latency,
            reconfig_mode=reconfig_mode,
        )
        #: versioned cache of per-type units and the Eq. 1 availability bus.
        self._avail = AvailabilityCache(self.ffus, self.rfus)

    # ------------------------------------------------------------- queries
    def counts(self, include_ffus: bool = True) -> dict[FUType, int]:
        """Configured units per type (the Fig. 2 'currently configured' input).

        Units under reconfiguration are *not* counted: they cannot execute
        anything yet.
        """
        if include_ffus:
            by_type = self._avail.units_by_type()
            return {t: len(by_type[t]) for t in FU_TYPES}
        out = {t: 0 for t in FU_TYPES}
        for t, n in self.rfus.counts().items():
            out[t] += n
        return out

    def counts_tuple(self) -> tuple[int, ...]:
        """Configured units (fixed + loaded) per type, canonical type order.

        Cached by structure version: repeated calls between
        reconfigurations return the same tuple object without allocating.
        """
        return self._avail.counts_tuple()

    def units_by_type(self) -> dict[FUType, tuple[FunctionalUnit, ...]]:
        """All configured units grouped per type (cached; treat as read-only)."""
        return self._avail.units_by_type()

    def units_of_type(self, fu_type: FUType) -> list[FunctionalUnit]:
        """All configured units of a type, fixed units first."""
        return list(self._avail.units_of_type(fu_type))

    def full_allocation(self) -> tuple[list[int], list[bool]]:
        """Allocation + availability vectors over RFU slots then FFUs.

        This is the exact input pair of the Fig. 7 availability circuit.
        """
        rfu_vec = self.rfus.allocation_vector()
        allocation = list(rfu_vec.entries)
        availability: list[bool] = []
        for i in range(self.rfus.n_slots):
            head = self.rfus.head_of(i)
            unit = self.rfus.slots[head].unit if head is not None else None
            availability.append(bool(unit and unit.available))
        for u in self.ffus.units:
            allocation.append(u.fu_type.encoding)
            availability.append(u.available)
        return allocation, availability

    def available(self, fu_type: FUType) -> bool:
        """Eq. 1: is a unit of this type configured *and* idle?

        Read from the cached availability bus — provably the same value
        as evaluating the Fig. 7 circuit over :meth:`full_allocation`
        (the availability property tests pin the equivalence), but without
        rebuilding the allocation vector on the scheduler's hot path.
        """
        return bool(self._avail.bits() & (1 << fu_type.bit_index))

    def availability_bits(self) -> int:
        """The full Eq. 1 bus: bit ``t.bit_index`` set iff ``available(t)``."""
        return self._avail.bits()

    def idle_counts(self) -> dict[FUType, int]:
        """Idle units per type (cached; treat as read-only)."""
        return self._avail.idle_counts()

    def idle_unit(self, fu_type: FUType) -> FunctionalUnit | None:
        """An idle unit of the given type, preferring fixed units."""
        for u in self._avail.units_of_type(fu_type):
            if u.available:
                return u
        return None

    def idle_units(self, fu_type: FUType) -> list[FunctionalUnit]:
        return [u for u in self._avail.units_of_type(fu_type) if u.available]

    def allocation_vector(self) -> AllocationVector:
        """RFU-only Table 2 vector (the loader's bookkeeping structure)."""
        return self.rfus.allocation_vector()

    # ------------------------------------------------------------ mutation
    def issue(self, fu_type: FUType, cycles: int, occupant: int | None = None) -> FunctionalUnit:
        """Occupy an idle unit of ``fu_type`` for ``cycles``."""
        unit = self.idle_unit(fu_type)
        if unit is None:
            raise FabricError(f"no idle {fu_type.short_name} unit")
        unit.occupy(cycles, occupant)
        return unit

    def tick(self) -> None:
        self.ffus.tick()
        self.rfus.tick()

    # ---------------------------------------------------------- statistics
    @property
    def reconfigurations(self) -> int:
        return self.rfus.reconfigurations

    def utilisation(self) -> dict[FUType, tuple[int, int]]:
        """(busy, total) unit counts per type at this instant."""
        out: dict[FUType, tuple[int, int]] = {}
        for t, units in self._avail.units_by_type().items():
            busy = sum(1 for u in units if not u.available)
            out[t] = (busy, len(units))
        return out
