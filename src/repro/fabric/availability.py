"""The resource-availability function (Eq. 1) and its circuit (Fig. 7).

For a unit type *t*::

    available(t) = OR over every entry i of the resource-allocation vector
                   of  [ type(i) == type(t) ] AND availability(i)

where the allocation vector covers both the reconfigurable slots and the
fixed units, SPAN continuation entries never match any type encoding (so a
multi-slot unit is considered exactly once, through its head entry), and
``availability(i)`` is the idle signal of the unit at entry *i*.

Besides the bit-faithful :func:`available` reference, this module holds
:class:`AvailabilityCache` — the simulator's fast evaluation of the same
function.  The cache keeps per-type unit lists (rebuilt only when the slot
array's *structure* changes, i.e. a unit is loaded or evicted) and
maintains the 5-bit availability bus and per-type idle counts
**incrementally**: it registers itself as a listener on every configured
unit, and each idle/busy transition point-updates one counter and one bus
bit.  On the scheduler's per-cycle hot path a query is therefore a single
structure-version compare and an attribute read — no rescan of the units,
not even when the busy state moved (which it does nearly every cycle).

Setting the ``REPRO_AVAILABILITY_CROSSCHECK`` environment variable (or
constructing the cache with ``crosscheck=True``) arms a debug mode that
re-derives the bus and the idle counts from a full unit rescan on every
query and raises :class:`FabricError` on any divergence — the incremental
path is pinned to the rescan it replaced.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import FabricError
from repro.fabric.allocation import EMPTY_ENCODING, SPAN_ENCODING
from repro.fabric.units import FunctionalUnit
from repro.isa.futypes import FU_TYPES, FUType
from repro.utils.env import env_flag

__all__ = ["available", "availability_report", "AvailabilityCache"]

#: default for the per-query rescan cross-check (debug mode).
_CROSSCHECK_DEFAULT = env_flag("REPRO_AVAILABILITY_CROSSCHECK")


def available(
    fu_type: FUType,
    allocation: Sequence[int],
    availability: Sequence[bool],
) -> bool:
    """Evaluate Eq. 1 for one unit type.

    ``allocation`` holds the 3-bit entry of every slot/FFU position and
    ``availability`` the corresponding idle signals.  The two sequences
    must be the same length.
    """
    if len(allocation) != len(availability):
        raise FabricError(
            f"allocation ({len(allocation)}) and availability "
            f"({len(availability)}) vectors differ in length"
        )
    target = fu_type.encoding
    result = False
    for entry, avail in zip(allocation, availability):
        if entry in (EMPTY_ENCODING, SPAN_ENCODING):
            continue  # EMPTY matches nothing; SPAN is the 'count once' rule
        # bitwise equality of the two 3-bit encodings (the Fig. 7 XNOR/AND
        # product term), ANDed with the slot's availability signal
        result = result or (entry == target and avail)
    return result


def availability_report(
    allocation: Sequence[int], availability: Sequence[bool]
) -> dict[FUType, bool]:
    """Eq. 1 evaluated for every unit type (one Fig. 7 circuit per type)."""
    return {t: available(t, allocation, availability) for t in FU_TYPES}


class AvailabilityCache:
    """Incrementally-maintained cache of the configured units and the
    Eq. 1 bus.

    The cache answers the scheduler's three per-cycle questions — *which
    units exist per type*, *which types have an idle unit* (the 5-bit
    availability bus), and *how many idle units per type* — without
    rescanning anything:

    * the per-type unit tuples are rebuilt only when the slot array's
      ``structure_version`` moves (a load completed or a unit was
      evicted); the rebuild also re-registers the cache as a listener on
      exactly the configured units and re-derives the idle counts once;
    * between structure changes, every unit's idle/busy transition calls
      :meth:`unit_state_changed`, which adjusts one per-type count and one
      bus bit — O(1) per *event* instead of O(units) per *cycle*.

    Unit ordering inside each tuple is fixed units first, then
    reconfigurable units in slot order — the same preference order
    :meth:`Fabric.idle_unit` has always used.

    With ``crosscheck`` armed (constructor argument, or the
    ``REPRO_AVAILABILITY_CROSSCHECK`` environment variable) every query
    re-derives the answers from a full rescan and raises
    :class:`FabricError` on divergence.
    """

    __slots__ = (
        "_ffus",
        "_rfus",
        "_structure_seen",
        "_by_type",
        "_counts",
        "_bits",
        "_idle_counts",
        "_attached",
        "crosscheck",
    )

    def __init__(self, ffus, rfus, crosscheck: bool | None = None) -> None:
        self._ffus = ffus
        self._rfus = rfus
        self._structure_seen = -1
        self._by_type: dict[FUType, tuple[FunctionalUnit, ...]] = {}
        self._counts: tuple[int, ...] = ()
        self._bits = 0
        self._idle_counts: dict[FUType, int] = {}
        self._attached: list[FunctionalUnit] = []
        self.crosscheck = _CROSSCHECK_DEFAULT if crosscheck is None else crosscheck

    # ----------------------------------------------------------- refresh
    def _refresh_structure(self) -> None:
        version = self._rfus.structure_version
        if version == self._structure_seen:
            return
        for u in self._attached:
            try:
                u.listeners.remove(self)
            except ValueError:  # pragma: no cover - defensive
                pass
        by_type: dict[FUType, list[FunctionalUnit]] = {t: [] for t in FU_TYPES}
        for u in self._ffus.units:
            by_type[u.fu_type].append(u)
        for _, u in self._rfus.units():
            by_type[u.fu_type].append(u)
        self._by_type = {t: tuple(us) for t, us in by_type.items()}
        self._counts = tuple(len(self._by_type[t]) for t in FU_TYPES)
        self._attached = [u for us in self._by_type.values() for u in us]
        for u in self._attached:
            u.listeners.append(self)
        self._recount()
        self._structure_seen = version

    def _recount(self) -> None:
        """Full re-derivation of the idle counts and the bus (structure
        changes and the cross-check reference)."""
        bits = 0
        idle_counts: dict[FUType, int] = {}
        for t, units in self._by_type.items():
            idle = 0
            for u in units:
                if u.busy_remaining == 0:
                    idle += 1
            idle_counts[t] = idle
            if idle:
                bits |= 1 << t.bit_index
        self._bits = bits
        self._idle_counts = idle_counts

    # -------------------------------------------------- incremental update
    def unit_state_changed(self, unit: FunctionalUnit, idle: bool) -> None:
        """Listener callback: one unit flipped between idle and busy."""
        t = unit.fu_type
        counts = self._idle_counts
        n = counts[t] + (1 if idle else -1)
        counts[t] = n
        if n:
            self._bits |= 1 << t.bit_index
        else:
            self._bits &= ~(1 << t.bit_index)

    # --------------------------------------------------------- cross-check
    def _crosscheck(self) -> None:
        bits, counts = self._bits, dict(self._idle_counts)
        self._recount()
        if bits != self._bits or counts != self._idle_counts:
            raise FabricError(
                "incremental availability diverged from rescan: "
                f"bus {bits:#x} != {self._bits:#x} or counts {counts} != "
                f"{self._idle_counts}"
            )

    # ----------------------------------------------------------- queries
    def units_by_type(self) -> dict[FUType, tuple[FunctionalUnit, ...]]:
        """Configured units per type (treat as read-only)."""
        # repro: cold-call -- version-guarded structure rebuild: bounded
        # by reconfiguration events, not cycles
        self._refresh_structure()
        return self._by_type

    def units_of_type(self, fu_type: FUType) -> tuple[FunctionalUnit, ...]:
        # repro: cold-call -- version-guarded structure rebuild: bounded
        # by reconfiguration events, not cycles
        self._refresh_structure()
        return self._by_type[fu_type]

    def counts_tuple(self) -> tuple[int, ...]:
        """Configured units per type in canonical type order."""
        # repro: cold-call -- version-guarded structure rebuild: bounded
        # by reconfiguration events, not cycles
        self._refresh_structure()
        return self._counts

    def bits(self) -> int:
        """The Eq. 1 availability bus: bit ``t.bit_index`` set when a unit
        of type ``t`` is configured and idle."""
        # repro: cold-call -- version-guarded structure rebuild: bounded
        # by reconfiguration events, not cycles
        self._refresh_structure()
        if self.crosscheck:
            # repro: cold-call -- opt-in divergence cross-check (debug)
            self._crosscheck()
        return self._bits

    def idle_counts(self) -> dict[FUType, int]:
        """Idle units per type (treat as read-only)."""
        # repro: cold-call -- version-guarded structure rebuild: bounded
        # by reconfiguration events, not cycles
        self._refresh_structure()
        if self.crosscheck:
            # repro: cold-call -- opt-in divergence cross-check (debug)
            self._crosscheck()
        return self._idle_counts
