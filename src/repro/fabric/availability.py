"""The resource-availability function (Eq. 1) and its circuit (Fig. 7).

For a unit type *t*::

    available(t) = OR over every entry i of the resource-allocation vector
                   of  [ type(i) == type(t) ] AND availability(i)

where the allocation vector covers both the reconfigurable slots and the
fixed units, SPAN continuation entries never match any type encoding (so a
multi-slot unit is considered exactly once, through its head entry), and
``availability(i)`` is the idle signal of the unit at entry *i*.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import FabricError
from repro.fabric.allocation import EMPTY_ENCODING, SPAN_ENCODING
from repro.isa.futypes import FU_TYPES, FUType

__all__ = ["available", "availability_report"]


def available(
    fu_type: FUType,
    allocation: Sequence[int],
    availability: Sequence[bool],
) -> bool:
    """Evaluate Eq. 1 for one unit type.

    ``allocation`` holds the 3-bit entry of every slot/FFU position and
    ``availability`` the corresponding idle signals.  The two sequences
    must be the same length.
    """
    if len(allocation) != len(availability):
        raise FabricError(
            f"allocation ({len(allocation)}) and availability "
            f"({len(availability)}) vectors differ in length"
        )
    target = fu_type.encoding
    result = False
    for entry, avail in zip(allocation, availability):
        if entry in (EMPTY_ENCODING, SPAN_ENCODING):
            continue  # EMPTY matches nothing; SPAN is the 'count once' rule
        # bitwise equality of the two 3-bit encodings (the Fig. 7 XNOR/AND
        # product term), ANDed with the slot's availability signal
        result = result or (entry == target and avail)
    return result


def availability_report(
    allocation: Sequence[int], availability: Sequence[bool]
) -> dict[FUType, bool]:
    """Eq. 1 evaluated for every unit type (one Fig. 7 circuit per type)."""
    return {t: available(t, allocation, availability) for t in FU_TYPES}
