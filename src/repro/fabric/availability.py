"""The resource-availability function (Eq. 1) and its circuit (Fig. 7).

For a unit type *t*::

    available(t) = OR over every entry i of the resource-allocation vector
                   of  [ type(i) == type(t) ] AND availability(i)

where the allocation vector covers both the reconfigurable slots and the
fixed units, SPAN continuation entries never match any type encoding (so a
multi-slot unit is considered exactly once, through its head entry), and
``availability(i)`` is the idle signal of the unit at entry *i*.

Besides the bit-faithful :func:`available` reference, this module holds
:class:`AvailabilityCache` — the simulator's fast evaluation of the same
function.  The cache keeps per-type unit lists (rebuilt only when the slot
array's *structure* changes, i.e. a unit is loaded or evicted) and the
5-bit availability bus (recomputed only when some unit's busy state
changes, tracked through :func:`repro.fabric.units.busy_epoch`).  On the
scheduler's per-cycle hot path this turns Eq. 1 from five list-building
scans into a pair of integer version checks.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import FabricError
from repro.fabric.allocation import EMPTY_ENCODING, SPAN_ENCODING
from repro.fabric.units import FunctionalUnit, busy_epoch
from repro.isa.futypes import FU_TYPES, FUType

__all__ = ["available", "availability_report", "AvailabilityCache"]


def available(
    fu_type: FUType,
    allocation: Sequence[int],
    availability: Sequence[bool],
) -> bool:
    """Evaluate Eq. 1 for one unit type.

    ``allocation`` holds the 3-bit entry of every slot/FFU position and
    ``availability`` the corresponding idle signals.  The two sequences
    must be the same length.
    """
    if len(allocation) != len(availability):
        raise FabricError(
            f"allocation ({len(allocation)}) and availability "
            f"({len(availability)}) vectors differ in length"
        )
    target = fu_type.encoding
    result = False
    for entry, avail in zip(allocation, availability):
        if entry in (EMPTY_ENCODING, SPAN_ENCODING):
            continue  # EMPTY matches nothing; SPAN is the 'count once' rule
        # bitwise equality of the two 3-bit encodings (the Fig. 7 XNOR/AND
        # product term), ANDed with the slot's availability signal
        result = result or (entry == target and avail)
    return result


def availability_report(
    allocation: Sequence[int], availability: Sequence[bool]
) -> dict[FUType, bool]:
    """Eq. 1 evaluated for every unit type (one Fig. 7 circuit per type)."""
    return {t: available(t, allocation, availability) for t in FU_TYPES}


class AvailabilityCache:
    """Versioned cache of the configured units and the Eq. 1 bus.

    The cache answers the scheduler's three per-cycle questions — *which
    units exist per type*, *which types have an idle unit* (the 5-bit
    availability bus), and *how many idle units per type* — without
    rebuilding any lists, as long as nothing changed:

    * the per-type unit tuples are refreshed when the slot array's
      ``structure_version`` moves (a load completed or a unit was evicted);
    * the availability bus / idle counts are refreshed when the process
      busy epoch moves (any unit went busy or idle).

    Unit ordering inside each tuple is fixed units first, then
    reconfigurable units in slot order — the same preference order
    :meth:`Fabric.idle_unit` has always used.
    """

    __slots__ = (
        "_ffus",
        "_rfus",
        "_structure_seen",
        "_epoch_seen",
        "_by_type",
        "_counts",
        "_bits",
        "_idle_counts",
    )

    def __init__(self, ffus, rfus) -> None:
        self._ffus = ffus
        self._rfus = rfus
        self._structure_seen = -1
        self._epoch_seen = -1
        self._by_type: dict[FUType, tuple[FunctionalUnit, ...]] = {}
        self._counts: tuple[int, ...] = ()
        self._bits = 0
        self._idle_counts: dict[FUType, int] = {}

    # ----------------------------------------------------------- refresh
    def _refresh_structure(self) -> None:
        version = self._rfus.structure_version
        if version == self._structure_seen:
            return
        by_type: dict[FUType, list[FunctionalUnit]] = {t: [] for t in FU_TYPES}
        for u in self._ffus.units:
            by_type[u.fu_type].append(u)
        for _, u in self._rfus.units():
            by_type[u.fu_type].append(u)
        self._by_type = {t: tuple(us) for t, us in by_type.items()}
        self._counts = tuple(len(self._by_type[t]) for t in FU_TYPES)
        self._structure_seen = version
        self._epoch_seen = -1  # force a bus recompute against the new units

    def _refresh_busy(self) -> None:
        self._refresh_structure()
        epoch = busy_epoch()
        if epoch == self._epoch_seen:
            return
        bits = 0
        idle_counts: dict[FUType, int] = {}
        for t, units in self._by_type.items():
            idle = 0
            for u in units:
                if u.busy_remaining == 0:
                    idle += 1
            idle_counts[t] = idle
            if idle:
                bits |= 1 << t.bit_index
        self._bits = bits
        self._idle_counts = idle_counts
        self._epoch_seen = epoch

    # ----------------------------------------------------------- queries
    def units_by_type(self) -> dict[FUType, tuple[FunctionalUnit, ...]]:
        """Configured units per type (treat as read-only)."""
        self._refresh_structure()
        return self._by_type

    def units_of_type(self, fu_type: FUType) -> tuple[FunctionalUnit, ...]:
        self._refresh_structure()
        return self._by_type[fu_type]

    def counts_tuple(self) -> tuple[int, ...]:
        """Configured units per type in canonical type order."""
        self._refresh_structure()
        return self._counts

    def bits(self) -> int:
        """The Eq. 1 availability bus: bit ``t.bit_index`` set when a unit
        of type ``t`` is configured and idle."""
        self._refresh_busy()
        return self._bits

    def idle_counts(self) -> dict[FUType, int]:
        """Idle units per type (treat as read-only)."""
        self._refresh_busy()
        return self._idle_counts
