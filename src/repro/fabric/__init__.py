"""The reconfigurable fabric: FFUs, RFU slots and partial reconfiguration.

This is the substrate the configuration manager steers.  It models:

* a bank of five **fixed functional units** (one per type, Table 1) that
  guarantee every instruction can eventually execute;
* an array of eight **reconfigurable slots** whose contents change at run
  time via *partial reconfiguration* — each slot can be reloaded
  independently while the rest of the fabric keeps executing;
* the **resource-allocation vector** (Table 2 encodings, SPAN continuation
  slots for multi-slot units);
* the **availability circuit** of Eq. 1 / Fig. 7 that tells the wake-up
  array whether a unit of a given type is both configured and idle.
"""

from repro.fabric.allocation import (
    EMPTY_ENCODING,
    SPAN_ENCODING,
    AllocationVector,
    encoding_name,
)
from repro.fabric.availability import available, availability_report
from repro.fabric.configuration import (
    FFU_COUNTS,
    NUM_RFU_SLOTS,
    PREDEFINED_CONFIGS,
    Configuration,
    steering_table,
)
from repro.fabric.fabric import Fabric
from repro.fabric.slots import RfuSlotArray, Slot
from repro.fabric.units import FfuBank, FunctionalUnit

__all__ = [
    "AllocationVector",
    "EMPTY_ENCODING",
    "SPAN_ENCODING",
    "encoding_name",
    "available",
    "availability_report",
    "Configuration",
    "FFU_COUNTS",
    "NUM_RFU_SLOTS",
    "PREDEFINED_CONFIGS",
    "steering_table",
    "Fabric",
    "RfuSlotArray",
    "Slot",
    "FunctionalUnit",
    "FfuBank",
]
