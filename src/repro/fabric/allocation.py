"""The resource-allocation vector (Table 2).

One 3-bit entry per slot records what the slot currently implements:

* ``000`` — EMPTY: the slot holds nothing;
* a type encoding (Table 2) — the slot is the *head* of a unit;
* ``111`` — SPAN: the slot is a continuation of a multi-slot unit whose
  head is the nearest lower-indexed non-SPAN slot.

The configuration loader computes which slots must change by diffing two
allocation vectors (the paper's XOR); the availability circuit of Eq. 1
reads the vector to consider each multi-slot unit exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FabricError
from repro.isa.futypes import FUType

__all__ = ["EMPTY_ENCODING", "SPAN_ENCODING", "encoding_name", "AllocationVector"]

EMPTY_ENCODING = 0b000
SPAN_ENCODING = 0b111

_VALID = {EMPTY_ENCODING, SPAN_ENCODING} | {int(t) for t in FUType}


def encoding_name(encoding: int) -> str:
    """Human-readable name of a 3-bit slot encoding."""
    if encoding == EMPTY_ENCODING:
        return "EMPTY"
    if encoding == SPAN_ENCODING:
        return "SPAN"
    return FUType(encoding).short_name


@dataclass(frozen=True)
class AllocationVector:
    """An immutable snapshot of per-slot 3-bit encodings."""

    entries: tuple[int, ...]

    def __post_init__(self) -> None:
        for i, e in enumerate(self.entries):
            if e not in _VALID:
                raise FabricError(f"slot {i}: invalid encoding {e:#05b}")
        self._check_spans()

    def _check_spans(self) -> None:
        """SPAN entries must continue a preceding multi-slot head."""
        expected_spans = 0
        for i, e in enumerate(self.entries):
            if e == SPAN_ENCODING:
                if expected_spans == 0:
                    raise FabricError(f"slot {i}: SPAN without a preceding head")
                expected_spans -= 1
            elif e == EMPTY_ENCODING:
                if expected_spans:
                    raise FabricError(f"slot {i}: unit truncated mid-span")
                expected_spans = 0
            else:
                if expected_spans:
                    raise FabricError(f"slot {i}: unit truncated mid-span")
                expected_spans = FUType(e).slot_cost - 1
        if expected_spans:
            raise FabricError("allocation vector ends mid-span")

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, i: int) -> int:
        return self.entries[i]

    @classmethod
    def from_units(cls, n_slots: int, placements: dict[int, FUType]) -> "AllocationVector":
        """Build a vector from ``{head_slot: unit_type}`` placements."""
        entries = [EMPTY_ENCODING] * n_slots
        for head in sorted(placements):
            fu_type = placements[head]
            cost = fu_type.slot_cost
            if head < 0 or head + cost > n_slots:
                raise FabricError(
                    f"{fu_type.short_name} at slot {head} overruns the {n_slots}-slot fabric"
                )
            for k in range(head, head + cost):
                if entries[k] != EMPTY_ENCODING:
                    raise FabricError(f"slot {k}: overlapping placements")
                entries[k] = SPAN_ENCODING
            entries[head] = fu_type.encoding
        return cls(tuple(entries))

    def heads(self) -> list[tuple[int, FUType]]:
        """``(head_slot, unit_type)`` for every configured unit, in slot order."""
        return [
            (i, FUType(e))
            for i, e in enumerate(self.entries)
            if e not in (EMPTY_ENCODING, SPAN_ENCODING)
        ]

    def counts(self) -> dict[FUType, int]:
        """Configured units per type (each multi-slot unit counted once)."""
        out: dict[FUType, int] = {}
        for _, t in self.heads():
            out[t] = out.get(t, 0) + 1
        return out

    def diff_slots(self, other: "AllocationVector") -> list[int]:
        """Slots whose encodings differ (the paper's XOR of the vectors)."""
        if len(self) != len(other):
            raise FabricError("cannot diff allocation vectors of different lengths")
        return [i for i, (a, b) in enumerate(zip(self.entries, other.entries)) if a ^ b]

    def render(self) -> str:
        """One line per slot: index, binary encoding, name."""
        return "\n".join(
            f"slot {i}: {e:03b} {encoding_name(e)}" for i, e in enumerate(self.entries)
        )
