"""Functional units and the fixed-unit bank.

A :class:`FunctionalUnit` executes one instruction at a time for that
instruction's full latency (units are not internally pipelined — this is
what makes the *number* of configured units matter, which is the quantity
the steering mechanism optimises).  Each unit exposes the ``available``
signal of Fig. 7: asserted when the unit is configured and idle.

Units also publish their idle/busy **transitions** to registered
listeners (the Eq. 1 availability cache): occupy, a busy release, and a
count-down reaching zero call ``listener.unit_state_changed(unit, idle)``
at the moment the state flips.  This is what makes the availability layer
*incremental* — the cache point-updates one per-type count per event
instead of rescanning every unit whenever anything changed.  The
process-wide **busy epoch** (a counter bumped on the same transitions) is
retained as a cheap external observability hook.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import FabricError
from repro.isa.futypes import FU_TYPES, FUType

__all__ = ["FunctionalUnit", "FfuBank", "busy_epoch"]

_unit_ids = itertools.count()


class _BusyEpoch:
    """Process-wide monotonically increasing busy-state version."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


_BUSY_EPOCH = _BusyEpoch()


def busy_epoch() -> int:
    """The current busy-state version (see module docstring)."""
    return _BUSY_EPOCH.value


@dataclass(slots=True)
class FunctionalUnit:
    """One execution unit, fixed or reconfigurable."""

    fu_type: FUType
    fixed: bool = False
    uid: int = field(default_factory=lambda: next(_unit_ids))
    busy_remaining: int = 0
    #: id of the in-flight instruction occupying the unit (for tracing).
    occupant: int | None = None
    #: objects notified on every idle/busy transition via
    #: ``unit_state_changed(unit, idle)`` (the availability caches).
    listeners: list = field(default_factory=list, repr=False, compare=False)

    @property
    def available(self) -> bool:
        """The slot's 'available' output: asserted when the unit is idle."""
        return self.busy_remaining == 0

    def _notify(self, idle: bool) -> None:
        _BUSY_EPOCH.value += 1
        for listener in self.listeners:
            listener.unit_state_changed(self, idle)

    def occupy(self, cycles: int, occupant: int | None = None) -> None:
        """Begin executing an instruction that holds the unit for ``cycles``."""
        if cycles <= 0:
            raise FabricError(f"occupancy must be positive, got {cycles}")
        if not self.available:
            raise FabricError(
                f"{self.fu_type.short_name} unit {self.uid} is busy "
                f"({self.busy_remaining} cycles remaining)"
            )
        self.busy_remaining = cycles
        self.occupant = occupant
        self._notify(False)

    def release(self) -> None:
        """Force-release the unit (used when a flush squashes its occupant)."""
        was_busy = self.busy_remaining > 0
        self.busy_remaining = 0
        self.occupant = None
        if was_busy:
            self._notify(True)
        else:
            _BUSY_EPOCH.value += 1  # preserved epoch semantics: always bumps

    def tick(self) -> None:
        """Advance one cycle."""
        if self.busy_remaining > 0:
            self.busy_remaining -= 1
            if self.busy_remaining == 0:
                self.occupant = None
                self._notify(True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self.available else f"busy({self.busy_remaining})"
        kind = "FFU" if self.fixed else "RFU"
        return f"<{kind} {self.fu_type.short_name}#{self.uid} {state}>"


class FfuBank:
    """The five fixed functional units: one per type, always present."""

    def __init__(self, counts: dict[FUType, int] | None = None) -> None:
        if counts is None:
            counts = {t: 1 for t in FU_TYPES}
        self._units: list[FunctionalUnit] = []
        for t in FU_TYPES:
            for _ in range(counts.get(t, 0)):
                self._units.append(FunctionalUnit(t, fixed=True))

    @property
    def units(self) -> list[FunctionalUnit]:
        return list(self._units)

    def units_of_type(self, fu_type: FUType) -> list[FunctionalUnit]:
        return [u for u in self._units if u.fu_type is fu_type]

    def counts(self) -> dict[FUType, int]:
        out: dict[FUType, int] = {}
        for u in self._units:
            out[u.fu_type] = out.get(u.fu_type, 0) + 1
        return out

    def tick(self) -> None:
        for u in self._units:
            u.tick()
