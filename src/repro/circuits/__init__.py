"""Combinational-circuit models for the configuration-selection hardware.

The configuration manager of the paper is specified as a concrete circuit
(Figs. 2, 3 and 7): one-hot unit decoders, population-count requirement
encoders, barrel-shifter error-metric generators summed by a 3-bit
five-operand adder, and a minimal-error comparator tree.  This package
provides bit-accurate functional models of those blocks together with
analytic gate-count / logic-depth estimates (:mod:`repro.circuits.cost`)
that back the paper's "fast and efficient" claim.

All functional models operate on plain ints as fixed-width unsigned bit
vectors and raise :class:`repro.errors.CircuitError` when driven outside
their declared width, mimicking a hardware assertion.
"""

from repro.circuits.adders import (
    full_adder,
    multi_operand_add,
    ripple_carry_add,
    saturating_add,
)
from repro.circuits.comparators import equals, less_than, minimum_index
from repro.circuits.cost import (
    CircuitCost,
    barrel_shifter_cost,
    comparator_cost,
    multi_operand_adder_cost,
    popcount_cost,
    ripple_adder_cost,
    selection_unit_cost,
)
from repro.circuits.encoders import one_hot, popcount_tree, priority_encoder
from repro.circuits.shifters import barrel_shift_right, cem_shift_control

__all__ = [
    "full_adder",
    "ripple_carry_add",
    "saturating_add",
    "multi_operand_add",
    "equals",
    "less_than",
    "minimum_index",
    "one_hot",
    "priority_encoder",
    "popcount_tree",
    "barrel_shift_right",
    "cem_shift_control",
    "CircuitCost",
    "ripple_adder_cost",
    "barrel_shifter_cost",
    "comparator_cost",
    "popcount_cost",
    "multi_operand_adder_cost",
    "selection_unit_cost",
]
