"""Gate-level netlists of the selection circuits.

Where :mod:`repro.circuits.adders` etc. model the hardware *functionally*,
this module builds the same blocks as explicit gate graphs — 2-input
AND/OR/XOR/NOT primitives wired through named nets — that can be evaluated,
counted and depth-analysed.  The netlist builders are verified against the
functional models (property tests), and their true gate counts calibrate
the analytic estimates in :mod:`repro.circuits.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CircuitError

__all__ = [
    "Netlist",
    "build_ripple_adder",
    "build_popcount",
    "build_barrel_shifter",
    "build_less_than",
    "build_minimum_selector",
    "build_cem_generator",
]

_KINDS = {"AND": 2, "OR": 2, "XOR": 2, "NOT": 1}


@dataclass(frozen=True)
class _Gate:
    kind: str
    inputs: tuple[int, ...]
    output: int


@dataclass
class Netlist:
    """A combinational gate graph over single-bit nets.

    Nets are integers.  Net 0 is constant 0 and net 1 constant 1.  Gates
    are appended in topological order (builders only reference existing
    nets), so evaluation is a single forward pass.
    """

    _n_nets: int = 2  # nets 0 and 1 are the constants
    gates: list[_Gate] = field(default_factory=list)
    inputs: dict[str, list[int]] = field(default_factory=dict)
    outputs: dict[str, list[int]] = field(default_factory=dict)
    _depth: dict[int, int] = field(default_factory=lambda: {0: 0, 1: 0})

    # ------------------------------------------------------------- wiring
    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def new_net(self) -> int:
        net = self._n_nets
        self._n_nets += 1
        self._depth.setdefault(net, 0)
        return net

    def input_bus(self, name: str, width: int) -> list[int]:
        """Declare a named input bus (LSB first)."""
        if name in self.inputs:
            raise CircuitError(f"input bus {name!r} already declared")
        bus = [self.new_net() for _ in range(width)]
        self.inputs[name] = bus
        return bus

    def output_bus(self, name: str, nets: list[int]) -> None:
        if name in self.outputs:
            raise CircuitError(f"output bus {name!r} already declared")
        self.outputs[name] = list(nets)

    def gate(self, kind: str, *ins: int) -> int:
        """Append one gate; returns its output net."""
        if kind not in _KINDS:
            raise CircuitError(f"unknown gate kind {kind!r}")
        if len(ins) != _KINDS[kind]:
            raise CircuitError(f"{kind} takes {_KINDS[kind]} inputs, got {len(ins)}")
        for net in ins:
            if net >= self._n_nets:
                raise CircuitError(f"gate references undriven net {net}")
        out = self.new_net()
        self.gates.append(_Gate(kind, tuple(ins), out))
        self._depth[out] = 1 + max(self._depth[i] for i in ins)
        return out

    # convenience compound gates -----------------------------------------
    def and_(self, a: int, b: int) -> int:
        return self.gate("AND", a, b)

    def or_(self, a: int, b: int) -> int:
        return self.gate("OR", a, b)

    def xor(self, a: int, b: int) -> int:
        return self.gate("XOR", a, b)

    def not_(self, a: int) -> int:
        return self.gate("NOT", a)

    def mux(self, sel: int, a: int, b: int) -> int:
        """2:1 mux: ``sel ? b : a`` (three gates, like real cells)."""
        return self.or_(self.and_(a, self.not_(sel)), self.and_(b, sel))

    def or_tree(self, nets: list[int]) -> int:
        if not nets:
            return self.zero
        while len(nets) > 1:
            nxt = [self.or_(nets[i], nets[i + 1]) for i in range(0, len(nets) - 1, 2)]
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def and_tree(self, nets: list[int]) -> int:
        if not nets:
            return self.one
        while len(nets) > 1:
            nxt = [self.and_(nets[i], nets[i + 1]) for i in range(0, len(nets) - 1, 2)]
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    # ----------------------------------------------------------- analysis
    @property
    def gate_count(self) -> int:
        return len(self.gates)

    @property
    def depth(self) -> int:
        targets = [n for bus in self.outputs.values() for n in bus]
        if not targets:
            targets = list(self._depth)
        return max(self._depth[n] for n in targets)

    # ---------------------------------------------------------- evaluation
    def evaluate(self, **bus_values: int) -> dict[str, int]:
        """Drive the named input buses with integer values (LSB-first
        encoding) and return every output bus as an integer."""
        values = {0: 0, 1: 1}
        for name, bus in self.inputs.items():
            if name not in bus_values:
                raise CircuitError(f"missing value for input bus {name!r}")
            v = bus_values[name]
            if v < 0 or v >= (1 << len(bus)):
                raise CircuitError(
                    f"value {v} does not fit input bus {name!r} ({len(bus)} bits)"
                )
            for i, net in enumerate(bus):
                values[net] = (v >> i) & 1
        extra = set(bus_values) - set(self.inputs)
        if extra:
            raise CircuitError(f"unknown input buses: {sorted(extra)}")

        for gate in self.gates:
            ins = [values[i] for i in gate.inputs]
            if gate.kind == "AND":
                out = ins[0] & ins[1]
            elif gate.kind == "OR":
                out = ins[0] | ins[1]
            elif gate.kind == "XOR":
                out = ins[0] ^ ins[1]
            else:  # NOT
                out = ins[0] ^ 1
            values[gate.output] = out

        result = {}
        for name, bus in self.outputs.items():
            v = 0
            for i, net in enumerate(bus):
                v |= values[net] << i
            result[name] = v
        return result


# ---------------------------------------------------------------- builders
def _full_adder(nl: Netlist, a: int, b: int, cin: int) -> tuple[int, int]:
    axb = nl.xor(a, b)
    s = nl.xor(axb, cin)
    cout = nl.or_(nl.and_(a, b), nl.and_(axb, cin))
    return s, cout


def build_ripple_adder(
    nl: Netlist, a: list[int], b: list[int], cin: int | None = None
) -> tuple[list[int], int]:
    """Ripple-carry adder over two equal-width buses; returns (sum, cout)."""
    if len(a) != len(b):
        raise CircuitError("adder operand widths differ")
    carry = cin if cin is not None else nl.zero
    out = []
    for abit, bbit in zip(a, b):
        s, carry = _full_adder(nl, abit, bbit, carry)
        out.append(s)
    return out, carry


def build_popcount(nl: Netlist, bits: list[int], out_width: int) -> list[int]:
    """Population counter: adder tree over single-bit inputs."""
    total = [nl.zero] * out_width
    for bit in bits:
        addend = [bit] + [nl.zero] * (out_width - 1)
        total, _ = build_ripple_adder(nl, total, addend)
    return total


def build_barrel_shifter(
    nl: Netlist, value: list[int], shift: list[int]
) -> list[int]:
    """Logical right shifter: one mux rank per shift-control bit."""
    current = list(value)
    for rank, sel in enumerate(shift):
        amount = 1 << rank
        shifted = [
            current[i + amount] if i + amount < len(current) else nl.zero
            for i in range(len(current))
        ]
        current = [nl.mux(sel, keep, sh) for keep, sh in zip(current, shifted)]
    return current


def build_less_than(nl: Netlist, a: list[int], b: list[int]) -> int:
    """Unsigned ``a < b`` over equal-width buses (MSB-first ripple)."""
    if len(a) != len(b):
        raise CircuitError("comparator operand widths differ")
    lt = nl.zero
    eq = nl.one
    for abit, bbit in zip(reversed(a), reversed(b)):
        bit_lt = nl.and_(nl.not_(abit), bbit)
        bit_eq = nl.not_(nl.xor(abit, bbit))
        lt = nl.or_(lt, nl.and_(eq, bit_lt))
        eq = nl.and_(eq, bit_eq)
    return lt


def build_minimum_selector(
    nl: Netlist, candidates: list[list[int]]
) -> list[int]:
    """Index (binary) of the minimum candidate; earliest index wins ties.

    Linear scan structure: keep (best_value, best_index), replace on a
    strict less-than — exactly the tie-break the paper requires when the
    current configuration is candidate 0.
    """
    if not candidates:
        raise CircuitError("minimum selector needs candidates")
    index_width = max(1, (len(candidates) - 1).bit_length())
    best = list(candidates[0])
    best_index = [nl.zero] * index_width
    for k in range(1, len(candidates)):
        cand = candidates[k]
        take = build_less_than(nl, cand, best)
        best = [nl.mux(take, old, new) for old, new in zip(best, cand)]
        k_bits = [(nl.one if (k >> i) & 1 else nl.zero) for i in range(index_width)]
        best_index = [
            nl.mux(take, old, new) for old, new in zip(best_index, k_bits)
        ]
    return best_index


def build_cem_generator(
    nl: Netlist,
    required: list[list[int]],
    shifts: list[int],
    sum_width: int = 6,
) -> list[int]:
    """One Fig. 3(b) CEM generator with hard-wired shift amounts.

    ``required`` holds the five 3-bit required-count buses; ``shifts`` the
    per-type constant shift (0, 1 or 2).  Returns the ``sum_width``-bit
    error bus.
    """
    if len(required) != len(shifts):
        raise CircuitError("one shift per required-count bus")
    total = [nl.zero] * sum_width
    for bus, shift in zip(required, shifts):
        if shift < 0 or shift >= len(bus):
            raise CircuitError(f"hard-wired shift {shift} out of range")
        shifted = bus[shift:] + [nl.zero] * shift  # drop low bits = >> shift
        padded = shifted + [nl.zero] * (sum_width - len(shifted))
        total, _ = build_ripple_adder(nl, total, padded)
    return total
