"""Barrel shifters and the Fig. 3(c) shift-control rule.

The configuration-error-metric generators approximate the division
``required / available`` by a right shift whose amount is the available
count rounded *down* to a power of two:

* ``available >= 4``      -> shift 2 (divide by 4)
* ``available in {2, 3}`` -> shift 1 (divide by 2)
* ``available <= 1``      -> shift 0 (divide by 1)

For the three predefined steering configurations the shift amounts are
hard-wired (their unit counts are static); for the *current* configuration
the shift control is derived combinationally from the upper two bits of the
3-bit count of currently configured units, exactly as Fig. 3(c) shows:
the high-order quantity bit selects divide-by-4 and the next lower bit
selects divide-by-2.
"""

from __future__ import annotations

from repro.errors import CircuitError
from repro.fabric.configuration import FFU_COUNTS, Configuration
from repro.isa.futypes import FU_TYPES
from repro.utils.bitops import mask

__all__ = [
    "COUNT_WIDTH",
    "SUM_WIDTH",
    "barrel_shift_right",
    "cem_shift_control",
    "hardwired_shifts",
]

#: bit width of a per-type required count.
COUNT_WIDTH = 3
#: bit width of the summed error metric (five 3-bit terms <= 35).
SUM_WIDTH = 6


def barrel_shift_right(value: int, shift: int, width: int) -> int:
    """Logical right shift of a ``width``-bit value by ``shift`` places.

    Models a mux-based barrel shifter: the shift amount must be expressible
    in the shifter's control bits (``shift < width``).
    """
    if value < 0 or value > mask(width):
        raise CircuitError(f"value={value:#x} exceeds {width}-bit shifter width")
    if shift < 0 or shift >= width:
        raise CircuitError(f"shift amount {shift} out of range for {width}-bit shifter")
    return (value >> shift) & mask(width)


def cem_shift_control(available: int, width: int = 3) -> int:
    """Shift amount for the current-configuration CEM shifter (Fig. 3(c)).

    ``available`` is the 3-bit count of configured units of one type
    (FFU + RFU copies).  Returns 2, 1 or 0.
    """
    if available < 0 or available > mask(width):
        raise CircuitError(
            f"available={available} exceeds {width}-bit quantity input"
        )
    high = (available >> (width - 1)) & 1  # quantity bit 2: available >= 4
    next_lower = (available >> (width - 2)) & 1  # quantity bit 1: available >= 2
    if high:
        return 2
    if next_lower:
        return 1
    return 0


def hardwired_shifts(
    config: Configuration, ffu_counts: dict | None = None
) -> tuple[int, ...]:
    """Shift amounts wired into a predefined configuration's CEM generator.

    The available count of each type is the configuration's unit count plus
    the fixed units; the shifter divides by that count rounded down to a
    power of two (max 4).
    """
    ffus = FFU_COUNTS if ffu_counts is None else ffu_counts
    shifts = []
    for t in FU_TYPES:
        avail = config.count(t) + ffus.get(t, 0)
        shifts.append(cem_shift_control(min(avail, 7)))
    return tuple(shifts)
