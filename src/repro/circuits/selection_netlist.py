"""The complete selection core (Fig. 2 stages 3-4) as one gate netlist.

Builds the four configuration-error-metric generators — three with
hard-wired shifts for the predefined configurations, one with the
Fig. 3(c) live shift control for the current configuration — feeding the
minimal-error selector with the ``error ‖ distance`` tie-break key, and
returns the two-bit configuration select.

Verified gate-for-gate against the functional
:class:`repro.steering.selection.ConfigurationSelectionUnit` (property
tests) and used by the E-COST bench to report *measured* rather than
estimated gate counts.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuits.netlist import (
    Netlist,
    build_cem_generator,
    build_minimum_selector,
    build_popcount,
    build_ripple_adder,
)
from repro.circuits.shifters import SUM_WIDTH, hardwired_shifts
from repro.errors import CircuitError
from repro.fabric.configuration import FFU_COUNTS, PREDEFINED_CONFIGS, Configuration
from repro.isa.futypes import FU_TYPES, NUM_FU_TYPES

__all__ = ["build_selection_core", "build_requirement_encoders", "SelectionCore"]

_DISTANCE_WIDTH = 6
_COUNT_WIDTH = 3


def build_requirement_encoders(
    nl: Netlist, n_entries: int = 7
) -> list[list[int]]:
    """Stage 2: per-type population counters over the queue's one-hot
    unit-decoder outputs.

    Declares one ``entry<i>`` input bus (5 bits, one-hot) per queue slot
    and returns the five 3-bit required-count buses.
    """
    entries = [nl.input_bus(f"entry{i}", NUM_FU_TYPES) for i in range(n_entries)]
    required = []
    for t in FU_TYPES:
        column = [entry[t.bit_index] for entry in entries]
        required.append(build_popcount(nl, column, _COUNT_WIDTH))
    return required


def _current_cem(
    nl: Netlist,
    required: list[list[int]],
    current_counts: list[list[int]],
) -> list[int]:
    """The current-configuration CEM: live Fig. 3(c) shift control.

    For each type, the shift amount comes from the upper two bits of the
    3-bit configured-unit count: count[2] selects >>2, else count[1]
    selects >>1, else >>0 — implemented as a two-rank mux network.
    """
    total = [nl.zero] * SUM_WIDTH
    for bus, count in zip(required, current_counts):
        high, mid = count[2], count[1]
        # candidate shifted values of the 3-bit required count
        by0 = bus
        by1 = [bus[1], bus[2], nl.zero]
        by2 = [bus[2], nl.zero, nl.zero]
        # select: high ? by2 : (mid ? by1 : by0)
        inner = [nl.mux(mid, a, b) for a, b in zip(by0, by1)]
        term = [nl.mux(high, a, b) for a, b in zip(inner, by2)]
        padded = term + [nl.zero] * (SUM_WIDTH - len(term))
        total, _ = build_ripple_adder(nl, total, padded)
    return total


def _distance_constant(nl: Netlist, value: int) -> list[int]:
    return [
        (nl.one if (value >> i) & 1 else nl.zero) for i in range(_DISTANCE_WIDTH)
    ]


def _abs_diff_distance(
    nl: Netlist,
    current_counts: list[list[int]],
    config: Configuration,
) -> list[int]:
    """L1 distance between the live counts and a predefined candidate's
    counts — the tie-break input, computed combinationally."""
    from repro.circuits.netlist import build_less_than

    total = [nl.zero] * _DISTANCE_WIDTH
    for t, count in zip(FU_TYPES, current_counts):
        target = config.count(t) + FFU_COUNTS.get(t, 0)
        t_bits = [
            (nl.one if (target >> i) & 1 else nl.zero) for i in range(_COUNT_WIDTH)
        ]
        lt = build_less_than(nl, count, t_bits)  # count < target ?
        # |count - target| via two subtractions and a mux (two's complement)
        inv_count = [nl.not_(b) for b in count]
        diff_a, _ = build_ripple_adder(nl, t_bits, inv_count, cin=nl.one)
        inv_t = [nl.not_(b) for b in t_bits]
        diff_b, _ = build_ripple_adder(nl, count, inv_t, cin=nl.one)
        # mux(sel, x, y) = sel ? y : x — pick (target - count) when lt
        absdiff = [
            nl.mux(lt, db_bit, da_bit)
            for db_bit, da_bit in zip(diff_b, diff_a)
        ]
        padded = absdiff + [nl.zero] * (_DISTANCE_WIDTH - len(absdiff))
        total, _ = build_ripple_adder(nl, total, padded)
    return total


class SelectionCore:
    """A built selection-core netlist plus its evaluation helper."""

    def __init__(self, configs: Sequence[Configuration] = PREDEFINED_CONFIGS) -> None:
        if len(configs) != 3:
            raise CircuitError("the two-bit select encodes exactly 4 candidates")
        self.configs = tuple(configs)
        self.netlist = build_selection_core(self.configs)

    def select(
        self, required: Sequence[int], current_counts: Sequence[int]
    ) -> dict[str, int]:
        """Evaluate the netlist; returns the ``select`` index and the four
        ``error<k>`` buses."""
        inputs = {f"req{i}": v for i, v in enumerate(required)}
        inputs |= {f"cur{i}": min(7, v) for i, v in enumerate(current_counts)}
        return self.netlist.evaluate(**inputs)


def build_selection_core(
    configs: Sequence[Configuration] = PREDEFINED_CONFIGS,
) -> Netlist:
    """Stages 3-4 of Fig. 2 as gates.

    Inputs: ``req0..req4`` (3-bit required counts) and ``cur0..cur4``
    (3-bit live configured counts).  Outputs: ``error0..error3`` (6-bit
    CEMs, current first) and ``select`` (2 bits).
    """
    nl = Netlist()
    required = [nl.input_bus(f"req{i}", _COUNT_WIDTH) for i in range(NUM_FU_TYPES)]
    current = [nl.input_bus(f"cur{i}", _COUNT_WIDTH) for i in range(NUM_FU_TYPES)]

    errors = [_current_cem(nl, required, current)]
    for cfg in configs:
        errors.append(
            build_cem_generator(nl, required, list(hardwired_shifts(cfg)))
        )

    distances = [_distance_constant(nl, 0)] + [
        _abs_diff_distance(nl, current, cfg) for cfg in configs
    ]
    keys = [d + e for e, d in zip(errors, distances)]  # error ‖ distance, LSB-first
    select = build_minimum_selector(nl, keys)

    for k, error in enumerate(errors):
        nl.output_bus(f"error{k}", error)
    nl.output_bus("select", select)
    return nl
