"""Comparators and the minimal-error selection network.

The minimal-error selection unit of Fig. 2 compares the four 6-bit error
metrics and outputs a two-bit configuration index.  Ties are resolved in
favour of the configuration requiring the least reconfiguration; because
configuration 0 is always the *current* configuration, scanning in index
order with a strict-less-than update implements the paper's "current
configuration is always favoured" rule, and callers order the remaining
candidates by reconfiguration distance for the secondary tie-break.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import CircuitError
from repro.utils.bitops import mask

__all__ = ["equals", "less_than", "minimum_index"]


def _check(name: str, value: int, width: int) -> None:
    if value < 0 or value > mask(width):
        raise CircuitError(f"{name}={value:#x} exceeds {width}-bit comparator width")


def equals(a: int, b: int, width: int) -> int:
    """Equality comparator: XNOR each bit pair, AND-reduce.  Returns 0/1."""
    _check("a", a, width)
    _check("b", b, width)
    return int(a == b)


def less_than(a: int, b: int, width: int) -> int:
    """Unsigned magnitude comparator ``a < b``.  Returns 0/1.

    Models the standard ripple scheme scanning from the MSB: the first bit
    position where the operands differ decides the comparison.
    """
    _check("a", a, width)
    _check("b", b, width)
    for i in range(width - 1, -1, -1):
        abit = (a >> i) & 1
        bbit = (b >> i) & 1
        if abit != bbit:
            return int(abit < bbit)
    return 0


def minimum_index(values: Sequence[int], width: int) -> int:
    """Index of the minimum value; ties keep the *earliest* index.

    This is the minimal-error selection network: candidate 0 (the current
    configuration) wins any tie against later candidates, matching the
    paper's requirement that equal error favours the configuration needing
    the least reconfiguration.
    """
    if not values:
        raise CircuitError("minimum_index requires at least one candidate")
    best_index = 0
    best_value = values[0]
    _check("values[0]", best_value, width)
    for i in range(1, len(values)):
        v = values[i]
        # bounds check inlined: the label only exists on the failure path,
        # so the success path allocates nothing
        if v < 0 or v > mask(width):
            raise CircuitError(
                f"values[{i}]={v:#x} exceeds {width}-bit comparator width"
            )
        if less_than(v, best_value, width):
            best_index = i
            best_value = v
    return best_index
