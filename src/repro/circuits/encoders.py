"""One-hot encoders, priority encoders and population counters.

The unit decoders of Fig. 2 emit, for each instruction-queue entry, a
one-hot vector naming the functional-unit type the instruction needs.  The
resource-requirement encoders then count, per type, how many entries assert
that type's bit — a population counter over (at most) seven inputs whose
3-bit output is the "required number of units" fed to the error-metric
generators.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuits.adders import ripple_carry_add
from repro.errors import CircuitError
from repro.utils.bitops import mask

__all__ = ["one_hot", "priority_encoder", "popcount_tree"]


def one_hot(index: int, width: int) -> int:
    """Return a ``width``-bit one-hot vector with bit ``index`` set."""
    if index < 0 or index >= width:
        raise CircuitError(f"one_hot index {index} out of range for width {width}")
    return 1 << index


def priority_encoder(bitmap: int, width: int) -> tuple[int, int]:
    """Lowest-set-bit priority encoder.

    Returns ``(index, valid)`` where ``valid`` is 0 when no bit is set (and
    ``index`` is then 0, as real encoders output a don't-care).
    """
    if bitmap < 0 or bitmap > mask(width):
        raise CircuitError(f"bitmap {bitmap:#x} exceeds encoder width {width}")
    for i in range(width):
        if (bitmap >> i) & 1:
            return i, 1
    return 0, 0


def popcount_tree(inputs: Sequence[int], out_width: int = 3) -> int:
    """Population counter: count the 1s among single-bit ``inputs``.

    Models the full-adder tree used by the resource-requirement encoders.
    The result is truncated to ``out_width`` bits; with the paper's 7-entry
    queue the count never exceeds 7 so no truncation occurs.
    """
    total = 0
    for i, v in enumerate(inputs):
        if v not in (0, 1):
            raise CircuitError(f"popcount input [{i}] must be 0 or 1, got {v}")
        total, _ = ripple_carry_add(total, v, out_width)
    return total
