"""Analytic gate-count and logic-depth estimates for the selection circuits.

The paper claims the configuration manager is a "fast and efficient
micro-architectural solution".  These estimators quantify that claim with
standard textbook costs in 2-input-gate equivalents (GE) and levels of
logic, and are exercised by the E-COST bench.

Conventions (typical static-CMOS textbook figures):

* 2-input NAND/NOR/AND/OR/XOR           = 1 GE, 1 level
* 2:1 mux                               = 3 GE, 2 levels
* 1-bit full adder                      = 5 GE, 3 levels (2 for carry)
* D flip-flop (for stored vectors)      = 6 GE (not on the combinational path)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "CircuitCost",
    "ripple_adder_cost",
    "barrel_shifter_cost",
    "comparator_cost",
    "popcount_cost",
    "multi_operand_adder_cost",
    "unit_decoder_cost",
    "requirement_encoder_cost",
    "cem_generator_cost",
    "minimum_selector_cost",
    "selection_unit_cost",
]


@dataclass(frozen=True)
class CircuitCost:
    """Gate-equivalent count and critical-path depth of a circuit block."""

    gates: int
    depth: int

    def in_series(self, other: "CircuitCost") -> "CircuitCost":
        """Compose two blocks one after the other (depths add)."""
        return CircuitCost(self.gates + other.gates, self.depth + other.depth)

    def in_parallel(self, other: "CircuitCost") -> "CircuitCost":
        """Compose two blocks side by side (depth is the max)."""
        return CircuitCost(self.gates + other.gates, max(self.depth, other.depth))

    def replicated(self, count: int) -> "CircuitCost":
        """``count`` independent copies operating in parallel."""
        if count < 0:
            raise ValueError(f"replication count must be non-negative, got {count}")
        return CircuitCost(self.gates * count, self.depth if count else 0)


def ripple_adder_cost(width: int) -> CircuitCost:
    """``width``-bit ripple-carry adder: one full adder per bit, carries ripple."""
    return CircuitCost(gates=5 * width, depth=2 * width + 1)


def barrel_shifter_cost(width: int, max_shift: int) -> CircuitCost:
    """Mux-based logarithmic barrel shifter.

    One rank of ``width`` 2:1 muxes per shift-control bit.
    """
    levels = max(1, math.ceil(math.log2(max_shift + 1)))
    return CircuitCost(gates=3 * width * levels, depth=2 * levels)


def comparator_cost(width: int) -> CircuitCost:
    """Unsigned ``a < b`` magnitude comparator (ripple from MSB)."""
    return CircuitCost(gates=3 * width, depth=width + 1)


def popcount_cost(n_inputs: int, out_width: int) -> CircuitCost:
    """Full-adder tree counting ``n_inputs`` single-bit inputs."""
    # A Wallace-style counter for n inputs needs about n - out_width full
    # adders; depth grows with log(n) ranks of 3-level adders.
    adders = max(1, n_inputs - 1)
    depth = 3 * max(1, math.ceil(math.log2(max(2, n_inputs))))
    return CircuitCost(gates=5 * adders, depth=depth)


def multi_operand_adder_cost(n_operands: int, in_width: int, out_width: int) -> CircuitCost:
    """Adder tree summing ``n_operands`` values of ``in_width`` bits."""
    ranks = max(1, math.ceil(math.log2(max(2, n_operands))))
    adders = n_operands - 1
    return CircuitCost(
        gates=adders * ripple_adder_cost(out_width).gates,
        depth=ranks * ripple_adder_cost(out_width).depth,
    )


def unit_decoder_cost(opcode_bits: int, n_types: int) -> CircuitCost:
    """One unit decoder: opcode -> one-hot functional-unit-type vector.

    Modelled as ``n_types`` wide-AND minterm groups over the opcode bits.
    """
    gates = n_types * (opcode_bits - 1)
    depth = math.ceil(math.log2(max(2, opcode_bits)))
    return CircuitCost(gates=gates, depth=depth)


def requirement_encoder_cost(n_entries: int, n_types: int, count_width: int) -> CircuitCost:
    """Per-type population counters over the queue's one-hot outputs."""
    return popcount_cost(n_entries, count_width).replicated(n_types)


def cem_generator_cost(n_types: int, count_width: int, sum_width: int) -> CircuitCost:
    """One configuration-error-metric generator (Fig. 3(b)).

    ``n_types`` barrel shifters (max shift 2) feeding an ``n_types``-operand
    adder, plus the Fig. 3(c) shift-control gates for the current config.
    """
    shifters = barrel_shifter_cost(count_width, 2).replicated(n_types)
    control = CircuitCost(gates=2 * n_types, depth=1)
    tree = multi_operand_adder_cost(n_types, count_width, sum_width)
    return shifters.in_parallel(control).in_series(tree)


def minimum_selector_cost(n_candidates: int, value_width: int) -> CircuitCost:
    """Minimal-error selection: comparator/mux tree over the candidates."""
    comparators = n_candidates - 1
    per_stage = comparator_cost(value_width).in_series(
        CircuitCost(gates=3 * (value_width + 2), depth=2)  # value + index muxes
    )
    depth_stages = math.ceil(math.log2(max(2, n_candidates)))
    return CircuitCost(gates=comparators * per_stage.gates, depth=depth_stages * per_stage.depth)


def selection_unit_cost(
    n_entries: int = 7,
    n_types: int = 5,
    n_configs: int = 4,
    opcode_bits: int = 7,
    count_width: int = 3,
    sum_width: int = 6,
) -> dict[str, CircuitCost]:
    """Cost breakdown of the full four-stage selection unit (Fig. 2).

    Returns per-stage costs plus a ``"total"`` entry composing the stages in
    series (stage outputs feed the next stage).
    """
    decoders = unit_decoder_cost(opcode_bits, n_types).replicated(n_entries)
    encoders = requirement_encoder_cost(n_entries, n_types, count_width)
    cems = cem_generator_cost(n_types, count_width, sum_width).replicated(n_configs)
    selector = minimum_selector_cost(n_configs, sum_width)
    total = decoders.in_series(encoders).in_series(cems).in_series(selector)
    return {
        "unit_decoders": decoders,
        "requirement_encoders": encoders,
        "cem_generators": cems,
        "minimal_error_selector": selector,
        "total": total,
    }
