"""Adder circuits: full adder, ripple-carry, saturating and multi-operand.

The paper's error-metric generator sums five per-type error terms with a
"3-bit, 5-operand adder"; because the instruction queue holds at most seven
instructions every term fits in 3 bits, and the sum fits in 6.  These models
compute bit-exactly what such adders compute, including width truncation.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import CircuitError
from repro.utils.bitops import mask

__all__ = ["full_adder", "ripple_carry_add", "saturating_add", "multi_operand_add"]


def _check(name: str, value: int, width: int) -> None:
    if value < 0 or value > mask(width):
        raise CircuitError(f"{name}={value:#x} exceeds {width}-bit input width")


def full_adder(a: int, b: int, cin: int = 0) -> tuple[int, int]:
    """One-bit full adder.  Returns ``(sum, carry_out)``."""
    for name, v in (("a", a), ("b", b), ("cin", cin)):
        if v not in (0, 1):
            raise CircuitError(f"full_adder input {name} must be 0 or 1, got {v}")
    s = a ^ b ^ cin
    cout = (a & b) | (a & cin) | (b & cin)
    return s, cout


def ripple_carry_add(a: int, b: int, width: int, cin: int = 0) -> tuple[int, int]:
    """``width``-bit ripple-carry adder.

    Returns ``(sum mod 2**width, carry_out)`` — bit-for-bit what a chain of
    :func:`full_adder` cells computes (the chain itself lives in the gate
    netlist model; here the identical function is computed arithmetically
    because this sits on the simulator's per-cycle hot path).
    """
    _check("a", a, width)
    _check("b", b, width)
    if cin not in (0, 1):
        raise CircuitError(f"carry-in must be 0 or 1, got {cin}")
    total = a + b + cin
    return total & mask(width), total >> width


def saturating_add(a: int, b: int, width: int) -> int:
    """Add with saturation at ``2**width - 1``.

    The resource-requirement encoders saturate rather than wrap: a queue can
    never demand more units than it has entries, but the encoder hardware
    still clamps defensively.
    """
    s, carry = ripple_carry_add(a, b, width)
    return mask(width) if carry else s


def multi_operand_add(values: Sequence[int], in_width: int, out_width: int) -> int:
    """Multi-operand adder tree (e.g. the paper's 3-bit five-operand adder).

    Each operand must fit in ``in_width`` bits; the result is truncated to
    ``out_width`` bits exactly as a fixed-width adder tree would.  With the
    paper's parameters (five 3-bit operands, 6-bit result) no truncation can
    occur since ``5 * 7 = 35 < 64``.
    """
    if not values:
        raise CircuitError("multi_operand_add requires at least one operand")
    for i, v in enumerate(values):
        # bounds check inlined: the label only exists on the failure path,
        # so the success path allocates nothing
        if v < 0 or v > mask(in_width):
            raise CircuitError(
                f"operand[{i}]={v:#x} exceeds {in_width}-bit input width"
            )
    total = 0
    for v in values:
        total, _ = ripple_carry_add(total, v & mask(out_width), out_width)
    return total
