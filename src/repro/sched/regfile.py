"""Architectural register files: 32 integer (x0 = 0) + 32 floating-point."""

from __future__ import annotations

from repro.errors import SchedulerError
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS

__all__ = ["RegisterFile"]


class RegisterFile:
    """Committed architectural state, written in order at retirement."""

    def __init__(self) -> None:
        self._int = [0] * NUM_INT_REGS
        self._fp = [0.0] * NUM_FP_REGS

    def read(self, reg_class: str, index: int) -> int | float:
        if reg_class == "int":
            return self._int[index]
        if reg_class == "fp":
            return self._fp[index]
        raise SchedulerError(f"unknown register class {reg_class!r}")

    def write(self, reg_class: str, index: int, value: int | float) -> None:
        if reg_class == "int":
            if index != 0:  # x0 is hard-wired to zero
                self._int[index] = int(value) & 0xFFFFFFFF
        elif reg_class == "fp":
            self._fp[index] = float(value)
        else:
            raise SchedulerError(f"unknown register class {reg_class!r}")

    # convenience accessors for tests and examples -----------------------
    def x(self, index: int) -> int:
        """Integer register value (unsigned 32-bit)."""
        return self._int[index]

    def f(self, index: int) -> float:
        """Floating-point register value."""
        return self._fp[index]

    def snapshot(self) -> dict:
        return {"int": list(self._int), "fp": list(self._fp)}
