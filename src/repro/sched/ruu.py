"""The register update unit (RUU).

Per the paper, the RUU "collects decoded instructions from the instruction
queue and dispatches them to the various functional units", resolves all
register dependences through its dependency buffer, performs out-of-order
execution with in-order completion, and forwards operands.  This
implementation adds the substrate details a working processor needs:

* **renaming by sequence number** — each dispatched instruction records,
  per source, the youngest older in-flight writer of that register (or the
  architectural file when none), which is both the wake-up dependence and
  the operand forwarding path;
* **store buffering** — stores compute address and data at execute and
  write memory at retirement; loads issue only when every older store's
  address is known, forwarding from an exact-match store and stalling on a
  partial overlap;
* **branch repair** — control instructions resolve at execute; the caller
  flushes younger entries on a mispredict via :meth:`flush_younger`;
* **in-order retirement** — up to ``retire_width`` completed entries leave
  per cycle in dispatch order, committing register and memory state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulerError
from repro.fabric.fabric import Fabric
from repro.frontend.fetch import FetchedInstruction
from repro.frontend.memory import DataMemory
from repro.isa import semantics
from repro.isa.futypes import FU_TYPES, FUType
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OperandClass
from repro.sched.entry import EntryState, RuuEntry, SourceBinding
from repro.sched.regfile import RegisterFile
from repro.sched.wakeup import WakeupArray

__all__ = ["BranchResolution", "IssueReport", "RegisterUpdateUnit"]


@dataclass(frozen=True, slots=True)
class BranchResolution:
    """A control instruction resolved this cycle."""

    entry: RuuEntry
    taken: bool
    target: int
    mispredicted: bool


@dataclass(slots=True)
class IssueReport:
    """What happened during one issue/execute step."""

    granted: list[int] = field(default_factory=list)
    #: sequence numbers issued this cycle, oldest first (what the processor
    #: records — returned directly so callers never rescan the window).
    issued: list[int] = field(default_factory=list)
    resolutions: list[BranchResolution] = field(default_factory=list)
    #: loads denied a grant by memory-ordering this cycle (statistics).
    memory_stalls: int = 0
    #: rows whose wake-up logic requested execution this cycle.
    requests: int = 0
    #: occupied, unissued rows whose producers were all ready but whose
    #: unit type had no idle unit (structural / configuration stalls).
    resource_blocked: int = 0


class RegisterUpdateUnit:
    """Dependency buffer + wake-up array + retirement logic."""

    def __init__(
        self,
        fabric: Fabric,
        dmem: DataMemory,
        window_size: int = 7,
        retire_width: int = 4,
        pipelined_scheduling: bool = False,
    ) -> None:
        self.fabric = fabric
        self.dmem = dmem
        self.wakeup = WakeupArray(window_size)
        self.regfile = RegisterFile()
        self.retire_width = retire_width
        #: [9]'s pipelined select-free mode: the wake-up logic sees the
        #: *previous* cycle's resource-availability bus (as a pipelined
        #: scheduler would), so grants are speculative — a grant whose unit
        #: was taken in the meantime is squashed via the reschedule input.
        self.pipelined_scheduling = pipelined_scheduling
        self._stale_resource_bits: int | None = None
        #: rows that lost a select-free collision, awaiting reschedule.
        self._pending_reschedule: list[int] = []
        #: speculative grants rescheduled because their unit disappeared.
        self.scheduling_replays = 0
        #: row index -> in-flight entry (parallel to the wake-up array).
        self._entries: dict[int, RuuEntry] = {}
        #: result-available bus, maintained incrementally: bit ``row`` set
        #: while the entry in that row is COMPLETED.  Updated at the state
        #: transitions (countdown expiry, retire, flush) instead of being
        #: rebuilt from the window every cycle.
        self._completed_bits = 0
        #: in-flight entries oldest first.  Sequence numbers are allocated
        #: monotonically, retirement removes from the front and flushes
        #: truncate the tail, so plain appends keep this sorted — the
        #: per-cycle ``sorted()`` rescans of the seed implementation become
        #: list reads.
        self._order: list[RuuEntry] = []
        #: seq -> wake-up row of the in-flight entry holding it.
        self._row_by_seq: dict[int, int] = {}
        #: youngest in-flight writer of each register: (class, idx) -> seq.
        self._rename: dict[tuple[str, int], int] = {}
        self._next_seq = 0
        #: per-cycle scratch containers, reused so the issue/dispatch hot
        #: paths allocate nothing (HOT001/HOT002 discipline).
        self._scratch_remaining: dict[FUType, int] = {}
        self._scratch_dep_rows: set[int] = set()
        self.halted = False
        # statistics ------------------------------------------------------
        self.dispatched = 0
        self.retired = 0
        self.flushed = 0
        self.memory_stalls = 0
        self.issued_per_type: dict[FUType, int] = {t: 0 for t in FU_TYPES}

    # ------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return self.wakeup.full

    @property
    def empty(self) -> bool:
        return not self._entries

    def in_order(self) -> list[RuuEntry]:
        """In-flight entries oldest first."""
        return list(self._order)

    # repro: allow[HOT001] -- interface contract: callers receive a fresh
    # list they may keep across cycles (steering policies slice and store it)
    def ready_unscheduled(self) -> list[Instruction]:
        """The instructions the configuration manager inspects: queue
        entries that have not yet been granted execution."""
        return [
            e.instruction
            for e in self._order
            if e.state is EntryState.WAITING
        ]

    def _row_of_seq(self, seq: int) -> int | None:
        return self._row_by_seq.get(seq)

    # ----------------------------------------------------------- dispatch
    def dispatch(self, fetched: FetchedInstruction) -> RuuEntry:
        """Insert one decoded instruction into the window."""
        if self.full:
            raise SchedulerError("RUU window is full")
        instr = fetched.instruction
        spec = instr.spec

        bindings: list[SourceBinding | None] = []
        # reused scratch: WakeupArray.insert only iterates it, never keeps it
        dep_rows = self._scratch_dep_rows
        dep_rows.clear()
        for cls, idx in (
            (spec.src1, instr.rs1),
            (spec.src2, instr.rs2),
        ):
            if cls is OperandClass.NONE or (cls is OperandClass.INT and idx == 0):
                bindings.append(None)
                continue
            reg_class = "int" if cls is OperandClass.INT else "fp"
            producer_seq = self._rename.get((reg_class, idx))
            bindings.append(SourceBinding(reg_class, idx, producer_seq))
            if producer_seq is not None:
                row = self._row_of_seq(producer_seq)
                if row is not None:
                    dep_rows.add(row)

        row = self.wakeup.insert(instr.fu_type, dep_rows)
        entry = RuuEntry(
            seq=self._next_seq,
            fetched=fetched,
            sources=(bindings[0], bindings[1]),
        )
        self._next_seq += 1
        self._entries[row] = entry
        self._order.append(entry)
        self._row_by_seq[entry.seq] = row

        dest = instr.destination()
        if dest is not None:
            self._rename[dest] = entry.seq
        self.dispatched += 1
        return entry

    # ------------------------------------------------------------ operands
    def _operand(self, binding: SourceBinding | None) -> int | float:
        if binding is None:
            return 0
        if binding.producer_seq is not None:
            row = self._row_of_seq(binding.producer_seq)
            if row is not None:
                producer = self._entries[row]
                if not producer.completed:
                    raise SchedulerError(
                        f"operand read before producer seq={producer.seq} completed"
                    )
                return producer.result
        return self.regfile.read(binding.reg_class, binding.index)

    # -------------------------------------------------------- memory rules
    def _older_stores(self, entry: RuuEntry) -> list[RuuEntry]:
        out = []
        for e in self._order:  # oldest first, so stop at the entry itself
            if e.seq >= entry.seq:
                break
            if e.is_store:
                out.append(e)
        return out

    def _load_memory_check(self, entry: RuuEntry) -> tuple[bool, RuuEntry | None]:
        """May this load issue, and from which store (if any) to forward?

        Conservative disambiguation: every older in-flight store must have
        computed its address; an exact address+size match forwards from the
        youngest such store; any partial overlap blocks the load until the
        store retires.
        """
        addr = semantics.effective_address(
            entry.instruction, int(self._operand(entry.sources[0]))
        )
        size = semantics.access_size(entry.instruction)
        forward: RuuEntry | None = None
        for store in self._older_stores(entry):
            if store.mem_addr is None:
                return False, None  # unknown older address: wait
            lo, hi = store.mem_addr, store.mem_addr + store.mem_size
            if hi <= addr or lo >= addr + size:
                continue  # disjoint
            if store.mem_addr == addr and store.mem_size == size:
                forward = store  # youngest exact match wins (kept updating)
            else:
                return False, None  # partial overlap: wait for retirement
        return True, forward

    # --------------------------------------------------------------- issue
    def _resource_available_bits(self) -> int:
        # the fabric's cached Eq. 1 bus (recomputed only when a unit's busy
        # state or the configured structure actually changed)
        return self.fabric.availability_bits()

    def _result_available_bits(self) -> int:
        return self._completed_bits

    def issue_and_execute(self, cycle: int = 0) -> IssueReport:
        """One issue step: wake-up requests, grants, functional execution."""
        report = IssueReport()
        # de-assert the scheduled bit of last cycle's collision losers (the
        # Fig. 6 reschedule input): they re-request from this cycle on
        for row in self._pending_reschedule:
            if row in self._entries and self._entries[row].state is EntryState.WAITING:
                self.wakeup.reschedule(row)
        self._pending_reschedule.clear()

        result_bits = self._result_available_bits()
        live_bits = self._resource_available_bits()
        if self.pipelined_scheduling:
            wakeup_bits = (
                self._stale_resource_bits
                if self._stale_resource_bits is not None
                else live_bits
            )
            self._stale_resource_bits = live_bits
        else:
            wakeup_bits = live_bits
        req_mask = self.wakeup.requests_mask(wakeup_bits, result_bits)
        report.requests = req_mask.bit_count()
        # rows ready on data but blocked on a unit: what steering fixes
        all_resources = (1 << len(FU_TYPES)) - 1
        report.resource_blocked = (
            self.wakeup.requests_mask(all_resources, result_bits).bit_count()
            - report.requests
        )
        # oldest-first grants (the select_grants arbitration, inlined over
        # the age-ordered window so no triple list is built or sorted)
        granted_rows: list[int] = []
        if req_mask:
            # overwrite-in-place copy of the live counts (all five types are
            # always keyed), so the grant loop can decrement freely
            remaining = self._scratch_remaining
            remaining.update(self.fabric.idle_counts())
            row_by_seq = self._row_by_seq
            for e in self._order:  # oldest first by construction
                row = row_by_seq[e.seq]
                if (req_mask >> row) & 1 and remaining.get(e.fu_type, 0) > 0:
                    remaining[e.fu_type] -= 1
                    granted_rows.append(row)
        if self.pipelined_scheduling and req_mask:
            # select-free [9]: every requester considered itself scheduled;
            # collision losers are squashed and replay via reschedule
            loser_mask = req_mask
            for row in granted_rows:
                loser_mask &= ~(1 << row)
            while loser_mask:
                low = loser_mask & -loser_mask
                row = low.bit_length() - 1
                loser_mask ^= low
                self.wakeup.mark_scheduled(row)
                self._pending_reschedule.append(row)
                self.scheduling_replays += 1
        for row in granted_rows:
            entry = self._entries[row]
            if entry.is_load:
                ok, forward = self._load_memory_check(entry)
                if not ok:
                    report.memory_stalls += 1
                    self.memory_stalls += 1
                    continue  # request persists next cycle
                self._execute_load(entry, forward)
            elif entry.is_store:
                self._execute_store(entry)
            elif entry.instruction.is_control:
                resolution = self._execute_control(entry)
                report.resolutions.append(resolution)
            else:
                self._execute_alu(entry)
            unit = self.fabric.issue(entry.fu_type, entry.instruction.latency, entry.seq)
            entry.unit_uid = unit.uid
            entry.state = EntryState.ISSUED
            entry.countdown = entry.instruction.latency
            entry.issue_cycle = cycle
            self.wakeup.mark_scheduled(row)
            self.issued_per_type[entry.fu_type] += 1
            report.granted.append(row)
            report.issued.append(entry.seq)
        return report

    # ------------------------------------------------------ execution kinds
    def _execute_alu(self, entry: RuuEntry) -> None:
        s1 = self._operand(entry.sources[0])
        s2 = self._operand(entry.sources[1])
        entry.result = semantics.alu_result(entry.instruction, s1, s2)

    def _execute_control(self, entry: RuuEntry) -> BranchResolution:
        s1 = int(self._operand(entry.sources[0]))
        s2 = int(self._operand(entry.sources[1]))
        taken, target, link = semantics.control_outcome(
            entry.instruction, entry.pc, s1, s2
        )
        entry.result = link
        entry.actual_next = target
        entry.mispredicted = target != entry.fetched.predicted_next
        return BranchResolution(
            entry=entry, taken=taken, target=target, mispredicted=entry.mispredicted
        )

    def _execute_load(self, entry: RuuEntry, forward: RuuEntry | None) -> None:
        base = int(self._operand(entry.sources[0]))
        addr = semantics.effective_address(entry.instruction, base)
        size = semantics.access_size(entry.instruction)
        entry.mem_addr, entry.mem_size = addr, size
        raw = forward.store_data if forward is not None else self.dmem.load(addr, size)
        entry.result = semantics.load_value(entry.instruction, raw)

    def _execute_store(self, entry: RuuEntry) -> None:
        base = int(self._operand(entry.sources[0]))
        value = self._operand(entry.sources[1])
        entry.mem_addr = semantics.effective_address(entry.instruction, base)
        entry.mem_size = semantics.access_size(entry.instruction)
        entry.store_data = semantics.store_bytes(entry.instruction, value)

    # ---------------------------------------------------------------- tick
    def tick(self) -> None:
        """Advance all count-down timers one cycle.

        An entry whose countdown expires asserts its result-available line:
        the transition sets the row's bit in the incrementally-maintained
        ``_completed_bits`` bus."""
        bits = self._completed_bits
        issued = EntryState.ISSUED
        for e in self._order:
            if e.state is issued:
                e.tick()
                if e.completed:
                    bits |= 1 << self._row_by_seq[e.seq]
        self._completed_bits = bits

    # -------------------------------------------------------------- retire
    def retire(self) -> list[RuuEntry]:
        """In-order retirement of up to ``retire_width`` completed entries."""
        retired: list[RuuEntry] = []
        order = self._order
        while len(retired) < self.retire_width and order:
            head = order[0]
            if not head.completed:
                break
            row = self._row_by_seq.pop(head.seq)
            self._commit(head)
            self.wakeup.remove(row)
            self._completed_bits &= ~(1 << row)
            del self._entries[row]
            order.pop(0)
            dest = head.instruction.destination()
            if dest is not None and self._rename.get(dest) == head.seq:
                del self._rename[dest]
            retired.append(head)
            self.retired += 1
            if head.instruction.is_halt:
                self.halted = True
                break
        return retired

    def _commit(self, entry: RuuEntry) -> None:
        if entry.is_store:
            self.dmem.store(entry.mem_addr, entry.store_data)
            return
        dest = entry.instruction.destination()
        if dest is not None and entry.result is not None:
            self.regfile.write(dest[0], dest[1], entry.result)

    # --------------------------------------------------------------- flush
    def flush_younger(self, seq: int) -> int:
        """Squash every entry younger than ``seq`` (mispredict recovery).

        Releases any functional units the squashed entries hold and rebuilds
        the rename map from the survivors.  Returns the number squashed.
        """
        victims = [
            (row, e) for row, e in self._entries.items() if e.seq > seq
        ]
        for row, e in victims:
            if e.state is EntryState.ISSUED:
                self._release_unit(e)
            self.wakeup.remove(row)
            self._completed_bits &= ~(1 << row)
            del self._entries[row]
            del self._row_by_seq[e.seq]
        self._order = [e for e in self._order if e.seq <= seq]
        self._rename = {}
        for e in self._order:
            dest = e.instruction.destination()
            if dest is not None:
                self._rename[dest] = e.seq
        self.flushed += len(victims)
        return len(victims)

    def _release_unit(self, entry: RuuEntry) -> None:
        for unit in self.fabric.units_of_type(entry.fu_type):
            if unit.uid == entry.unit_uid:
                unit.release()
                return

    # ------------------------------------------------------------- helpers
    def render_wakeup(self) -> str:
        """The Fig. 5 matrix with mnemonic row labels."""
        labels = {
            row: f"({e.instruction.mnemonic}) E{row + 1}"
            for row, e in self._entries.items()
        }
        return self.wakeup.render(labels)
