"""The wake-up array (Figs. 5 and 6 of the paper).

Each row holds the *resource vector* of one instruction-queue entry:

* five **execution-unit columns** (bit set = the instruction needs that
  unit type), driven by the per-type availability lines of Eq. 1;
* one **result column per row** (bit set = the instruction needs the
  result of that row's instruction), driven by the result-available lines
  of the count-down timers;
* a **scheduled bit** that suppresses further requests once the
  instruction has been granted (de-asserted again by ``reschedule``).

A row requests execution when, for every column, the OR of "not needed"
and "available" is true, and its scheduled bit is clear — exactly the
Fig. 6 gate network.

Representation: the whole matrix is **bit-packed into machine integers**.
Row *i*'s needs occupy one field of a single Python int (``_need``) at bit
offset ``i * field_width``::

    field := resource_bits          (NUM_FU_TYPES bits)
           | dep_bits << NUM_FU_TYPES   (n_entries bits)
           | guard                  (1 bit, always clear in _need)

and the occupied/scheduled flags are plain n-bit masks.  The per-cycle
request evaluation (:meth:`requests_mask`) runs the Fig. 6 logic for *all*
rows in one pass of word-wide bitwise operations — replicate the
availability buses across every field with one multiply, AND with the
stored needs to get the unmet columns, then zero-detect every field
simultaneously with the carry-free guard-bit subtraction trick.  No loop
over rows, no per-row objects on the hot path.

:class:`WakeupRow` and the ``rows`` list survive as a read-only facade
(snapshots built on demand) so rendering, tests and debuggers see the
same object API as before.  :meth:`requests_reference` keeps the original
row-loop implementation; the equivalence suite (and the opt-in
``WakeupArray.crosscheck`` mode) pin the kernel to it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.isa.futypes import FU_TYPES, NUM_FU_TYPES, FUType

__all__ = ["WakeupRow", "WakeupArray"]

#: mask of the resource (execution-unit) columns within one packed field.
_RES_MASK = (1 << NUM_FU_TYPES) - 1


@dataclass(slots=True)
class WakeupRow:
    """Read-only snapshot of one occupied row (see :attr:`WakeupArray.rows`)."""

    #: one-hot unit-type requirement (5 bits, Fig. 2 bit order).
    resource_bits: int
    #: dependency bitmap over the array's rows (bit i = needs row i's result).
    dep_bits: int
    scheduled: bool = False


class WakeupArray:
    """Fixed-size array of resource vectors with select-free request logic."""

    #: when set (class-wide), every :meth:`requests_mask` evaluation is
    #: checked against :meth:`requests_reference`; a divergence raises
    #: :class:`SchedulerError`.  Used by the equivalence tests.
    crosscheck = False

    def __init__(self, n_entries: int = 7) -> None:
        if n_entries <= 0:
            raise SchedulerError(f"wake-up array size must be positive: {n_entries}")
        n = n_entries
        self.n_entries = n
        # ---- packed-field geometry (see module docstring) ----------------
        width = NUM_FU_TYPES + n + 1  # resource | dep | guard
        self._width = width
        self._field_mask = (1 << (width - 1)) - 1  # one field, guard excluded
        ones = 0
        for i in range(n):
            ones |= 1 << (i * width)
        self._row_ones = ones  # bit 0 of every field
        self._guards = ones << (width - 1)  # guard bit of every field
        self._lo_mask = self._field_mask * ones  # all non-guard bits
        # ---- packed state ------------------------------------------------
        self._need = 0  # all rows' resource+dep fields
        self._occupied = 0  # n-bit row-occupancy mask
        self._scheduled = 0  # n-bit scheduled mask
        self._all_rows = (1 << n) - 1
        # guard-bit pattern -> row mask / row tuple memos (≤ 2**n entries)
        self._mask_memo: dict[int, int] = {}
        self._list_memo: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------ occupancy
    def __len__(self) -> int:
        return self._occupied.bit_count()

    @property
    def full(self) -> bool:
        return self._occupied == self._all_rows

    def occupied_mask(self) -> int:
        """n-bit mask of occupied rows."""
        return self._occupied

    def free_count(self) -> int:
        """Number of free rows (dispatch headroom) without building a list."""
        return self.n_entries - self._occupied.bit_count()

    def free_rows(self) -> list[int]:
        free = ~self._occupied & self._all_rows
        return [i for i in range(self.n_entries) if (free >> i) & 1]

    @property
    def rows(self) -> list[WakeupRow | None]:
        """Per-row snapshots (``None`` for free rows).  Read-only facade:
        mutations must go through the array's methods."""
        out: list[WakeupRow | None] = []
        need, occ, sched = self._need, self._occupied, self._scheduled
        width, fmask = self._width, self._field_mask
        for i in range(self.n_entries):
            if not (occ >> i) & 1:
                out.append(None)
                continue
            field = (need >> (i * width)) & fmask
            out.append(
                WakeupRow(
                    resource_bits=field & _RES_MASK,
                    dep_bits=field >> NUM_FU_TYPES,
                    scheduled=bool((sched >> i) & 1),
                )
            )
        return out

    def insert(self, fu_type: FUType, dep_rows: set[int]) -> int:
        """Allocate a row for an instruction needing ``fu_type`` and the
        results of ``dep_rows``.  Returns the row index."""
        occ = self._occupied
        for d in dep_rows:
            if not 0 <= d < self.n_entries or not (occ >> d) & 1:
                raise SchedulerError(f"dependency on invalid row {d}")
        free = ~occ & self._all_rows
        if not free:
            raise SchedulerError("wake-up array is full")
        index = (free & -free).bit_length() - 1  # lowest free row
        dep_bits = 0
        for d in dep_rows:
            dep_bits |= 1 << d
        field = (1 << fu_type.bit_index) | (dep_bits << NUM_FU_TYPES)
        self._need |= field << (index * self._width)
        self._occupied = occ | (1 << index)
        return index

    def remove(self, index: int) -> None:
        """Free a row and clear its result column everywhere (retire rule:
        dependents of a retired instruction must not wait for it, and new
        occupants of the row must not inherit stale dependences)."""
        if not (self._occupied >> index) & 1:
            raise SchedulerError(f"row {index} is not occupied")
        bit = 1 << index
        self._occupied &= ~bit
        self._scheduled &= ~bit
        self._need &= ~(self._field_mask << (index * self._width))
        self.clear_column(index)

    def clear_column(self, index: int) -> None:
        """Clear result column ``index`` in every row (one AND)."""
        self._need &= ~(self._row_ones << (NUM_FU_TYPES + index))

    # -------------------------------------------------------------- request
    def requests_mask(self, resource_available: int, result_available: int) -> int:
        """n-bit mask of rows requesting execution this cycle (Fig. 6).

        ``resource_available`` is the 5-bit Eq. 1 availability bus;
        ``result_available`` the n-bit result-available bus.  A row
        requests when every needed column is available and it is not yet
        scheduled.  All rows are evaluated in one bitwise pass.
        """
        if resource_available < 0 or resource_available >= (1 << NUM_FU_TYPES):
            raise SchedulerError(
                f"resource availability bus out of range: {resource_available:#x}"
            )
        # replicate the concatenated availability buses into every field
        avail = resource_available | (
            (result_available & self._all_rows) << NUM_FU_TYPES
        )
        unmet = self._need & (self._lo_mask ^ (avail * self._row_ones))
        # guard-bit zero detection: subtracting 1 from (guard | field)
        # borrows the guard away exactly when the field is zero, and the
        # guard confines every borrow to its own field
        nonzero = (unmet | self._guards) - self._row_ones
        satisfied = ~nonzero & self._guards
        rows = self._mask_memo.get(satisfied)
        if rows is None:
            rows = 0
            step = self._width
            probe = 1 << (step - 1)  # guard position of row 0
            for i in range(self.n_entries):
                if satisfied & probe:
                    rows |= 1 << i
                probe <<= step
            self._mask_memo[satisfied] = rows
        mask = rows & self._occupied & ~self._scheduled
        if WakeupArray.crosscheck:
            ref = 0
            for i in self.requests_reference(resource_available, result_available):
                ref |= 1 << i
            if ref != mask:
                raise SchedulerError(
                    f"bit-packed wake-up kernel diverged: {mask:#x} != {ref:#x}"
                )
        return mask

    def requests(self, resource_available: int, result_available: int) -> list[int]:
        """Rows requesting execution this cycle, ascending row order."""
        mask = self.requests_mask(resource_available, result_available)
        rows = self._list_memo.get(mask)
        if rows is None:
            rows = tuple(i for i in range(self.n_entries) if (mask >> i) & 1)
            self._list_memo[mask] = rows
        return list(rows)

    def requests_reference(
        self, resource_available: int, result_available: int
    ) -> list[int]:
        """The original per-row-loop request logic, kept as the executable
        specification the packed kernel is proven against."""
        out = []
        for i, row in enumerate(self.rows):
            if row is None or row.scheduled:
                continue
            if row.resource_bits & ~resource_available:
                continue  # required unit type not available
            if row.dep_bits & ~result_available:
                continue  # some producer's result not yet available
            out.append(i)
        return out

    def mark_scheduled(self, index: int) -> None:
        bit = 1 << index
        if not self._occupied & bit:
            raise SchedulerError(f"row {index} is not occupied")
        if self._scheduled & bit:
            raise SchedulerError(f"row {index} is already scheduled")
        self._scheduled |= bit

    def reschedule(self, index: int) -> None:
        """De-assert the scheduled bit (the Fig. 6 reschedule input)."""
        if not (self._occupied >> index) & 1:
            raise SchedulerError(f"row {index} is not occupied")
        self._scheduled &= ~(1 << index)

    # ------------------------------------------------------------ rendering
    def render(self, labels: dict[int, str] | None = None) -> str:
        """Render the array as the Fig. 5 matrix (for the F4-F6 artefact).

        Columns: the five execution-unit types, then one result column per
        row.  ``labels`` optionally names each occupied row.
        """
        labels = labels or {}
        type_heads = [t.short_name for t in FU_TYPES]
        entry_heads = [f"E{i + 1}" for i in range(self.n_entries)]
        name_w = max([len("entry")] + [len(v) for v in labels.values()]) + 2
        header = "".ljust(name_w) + " ".join(
            h.rjust(6) for h in type_heads
        ) + " | " + " ".join(h.rjust(3) for h in entry_heads)
        lines = [header]
        for i, row in enumerate(self.rows):
            name = labels.get(i, f"entry {i + 1}")
            if row is None:
                lines.append(name.ljust(name_w) + "(empty)")
                continue
            tbits = " ".join(
                ("1" if (row.resource_bits >> t.bit_index) & 1 else ".").rjust(6)
                for t in FU_TYPES
            )
            ebits = " ".join(
                ("1" if (row.dep_bits >> j) & 1 else ".").rjust(3)
                for j in range(self.n_entries)
            )
            lines.append(name.ljust(name_w) + tbits + " | " + ebits)
        return "\n".join(lines)
