"""The wake-up array (Figs. 5 and 6 of the paper).

Each row holds the *resource vector* of one instruction-queue entry:

* five **execution-unit columns** (bit set = the instruction needs that
  unit type), driven by the per-type availability lines of Eq. 1;
* one **result column per row** (bit set = the instruction needs the
  result of that row's instruction), driven by the result-available lines
  of the count-down timers;
* a **scheduled bit** that suppresses further requests once the
  instruction has been granted (de-asserted again by ``reschedule``).

A row requests execution when, for every column, the OR of "not needed"
and "available" is true, and its scheduled bit is clear — exactly the
Fig. 6 gate network, computed here with bit masks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.isa.futypes import FU_TYPES, NUM_FU_TYPES, FUType

__all__ = ["WakeupRow", "WakeupArray"]


@dataclass(slots=True)
class WakeupRow:
    """One occupied row of the array."""

    #: one-hot unit-type requirement (5 bits, Fig. 2 bit order).
    resource_bits: int
    #: dependency bitmap over the array's rows (bit i = needs row i's result).
    dep_bits: int
    scheduled: bool = False


class WakeupArray:
    """Fixed-size array of resource vectors with select-free request logic."""

    def __init__(self, n_entries: int = 7) -> None:
        if n_entries <= 0:
            raise SchedulerError(f"wake-up array size must be positive: {n_entries}")
        self.n_entries = n_entries
        self.rows: list[WakeupRow | None] = [None] * n_entries

    # ------------------------------------------------------------ occupancy
    def __len__(self) -> int:
        return sum(1 for r in self.rows if r is not None)

    @property
    def full(self) -> bool:
        return all(r is not None for r in self.rows)

    def free_rows(self) -> list[int]:
        return [i for i, r in enumerate(self.rows) if r is None]

    def insert(self, fu_type: FUType, dep_rows: set[int]) -> int:
        """Allocate a row for an instruction needing ``fu_type`` and the
        results of ``dep_rows``.  Returns the row index."""
        for d in dep_rows:
            if not 0 <= d < self.n_entries or self.rows[d] is None:
                raise SchedulerError(f"dependency on invalid row {d}")
        for i, row in enumerate(self.rows):
            if row is None:
                dep_bits = 0
                for d in dep_rows:
                    dep_bits |= 1 << d
                self.rows[i] = WakeupRow(
                    resource_bits=1 << fu_type.bit_index, dep_bits=dep_bits
                )
                return i
        raise SchedulerError("wake-up array is full")

    def remove(self, index: int) -> None:
        """Free a row and clear its result column everywhere (retire rule:
        dependents of a retired instruction must not wait for it, and new
        occupants of the row must not inherit stale dependences)."""
        if self.rows[index] is None:
            raise SchedulerError(f"row {index} is not occupied")
        self.rows[index] = None
        self.clear_column(index)

    def clear_column(self, index: int) -> None:
        """Clear result column ``index`` in every row."""
        mask = ~(1 << index)
        for row in self.rows:
            if row is not None:
                row.dep_bits &= mask

    # -------------------------------------------------------------- request
    def requests(self, resource_available: int, result_available: int) -> list[int]:
        """Rows requesting execution this cycle (Fig. 6 logic).

        ``resource_available`` is the 5-bit Eq. 1 availability bus;
        ``result_available`` the n-bit result-available bus.  A row requests
        when every needed column is available and it is not yet scheduled.
        """
        if resource_available < 0 or resource_available >= (1 << NUM_FU_TYPES):
            raise SchedulerError(
                f"resource availability bus out of range: {resource_available:#x}"
            )
        out = []
        for i, row in enumerate(self.rows):
            if row is None or row.scheduled:
                continue
            if row.resource_bits & ~resource_available:
                continue  # required unit type not available
            if row.dep_bits & ~result_available:
                continue  # some producer's result not yet available
            out.append(i)
        return out

    def mark_scheduled(self, index: int) -> None:
        row = self.rows[index]
        if row is None:
            raise SchedulerError(f"row {index} is not occupied")
        if row.scheduled:
            raise SchedulerError(f"row {index} is already scheduled")
        row.scheduled = True

    def reschedule(self, index: int) -> None:
        """De-assert the scheduled bit (the Fig. 6 reschedule input)."""
        row = self.rows[index]
        if row is None:
            raise SchedulerError(f"row {index} is not occupied")
        row.scheduled = False

    # ------------------------------------------------------------ rendering
    def render(self, labels: dict[int, str] | None = None) -> str:
        """Render the array as the Fig. 5 matrix (for the F4-F6 artefact).

        Columns: the five execution-unit types, then one result column per
        row.  ``labels`` optionally names each occupied row.
        """
        labels = labels or {}
        type_heads = [t.short_name for t in FU_TYPES]
        entry_heads = [f"E{i + 1}" for i in range(self.n_entries)]
        name_w = max([len("entry")] + [len(v) for v in labels.values()]) + 2
        header = "".ljust(name_w) + " ".join(
            h.rjust(6) for h in type_heads
        ) + " | " + " ".join(h.rjust(3) for h in entry_heads)
        lines = [header]
        for i, row in enumerate(self.rows):
            name = labels.get(i, f"entry {i + 1}")
            if row is None:
                lines.append(name.ljust(name_w) + "(empty)")
                continue
            tbits = " ".join(
                ("1" if (row.resource_bits >> t.bit_index) & 1 else ".").rjust(6)
                for t in FU_TYPES
            )
            ebits = " ".join(
                ("1" if (row.dep_bits >> j) & 1 else ".").rjust(3)
                for j in range(self.n_entries)
            )
            lines.append(name.ljust(name_w) + tbits + " | " + ebits)
        return "\n".join(lines)
