"""Lane-batched wake-up kernel: the Fig. 6 request logic over N lanes.

The scalar :class:`repro.sched.wakeup.WakeupArray` packs one simulation's
wake-up matrix into a single machine word and evaluates every row in one
bitwise pass.  This module lifts that same evaluation one axis higher: a
*bank* holds the need fields of N independent simulations (lanes) as a
``(lanes, rows)`` array of packed words, and one vectorized pass computes
every lane's request mask simultaneously.

Packing layout (identical to one scalar field, one array element per row)::

    need[lane, row] = one_hot(fu_type.bit_index)            # NUM_FU_TYPES bits
                    | dep_bits << NUM_FU_TYPES              # n_rows bits

    avail[lane]     = resource_bits                         # Eq. 1 bus
                    | result_bits << NUM_FU_TYPES           # completed rows

A row requests execution when every needed column is available::

    requests[lane, row]  <=>  need[lane, row] & ~avail[lane] == 0

which vectorizes to two element-wise operations and a weighted row
reduction per lane — no Python loop over lanes or rows (the HOT007 lint
rule pins this for :meth:`LaneWakeupBank.requests`).  The all-resources
variant (``avail | RES_MASK``) feeds the resource-blocked statistic, the
same pair of calls the scalar scheduler makes.

Contract: rows whose need field is zero (free rows) report as requesting
in both masks; callers must AND the returned masks with their occupancy
and scheduled state, exactly as :meth:`WakeupArray.requests_mask` does
internally.  The bank stores *need* only — occupancy and scheduled bits
stay lane-local, where the event-driven scalar updates are cheapest.

numpy is optional: :func:`make_lane_bank` falls back to the pure-Python
:class:`PyLaneWakeupBank` (same API, per-lane packed ints) when numpy is
missing or the window is too wide for the fixed-width kernel, so the
vector engine — and with it tier-1 — stays stdlib-green.
"""

from __future__ import annotations

from repro.errors import SchedulerError
from repro.isa.futypes import NUM_FU_TYPES

try:  # optional dependency: the bench/CI bench job installs it, tier-1 not
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the fallback tests
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "MAX_KERNEL_ROWS",
    "LaneWakeupBank",
    "PyLaneWakeupBank",
    "LaneCountdownBank",
    "PyLaneCountdownBank",
    "make_lane_bank",
    "make_countdown_bank",
]

#: whether the vectorized (numpy) kernel is available in this process.
HAVE_NUMPY = _np is not None

#: mask of the resource (execution-unit) columns within one packed field.
_RES_MASK = (1 << NUM_FU_TYPES) - 1

#: widest window the uint32 kernel supports: NUM_FU_TYPES + rows <= 32.
MAX_KERNEL_ROWS = 32 - NUM_FU_TYPES


class LaneWakeupBank:
    """N lanes of packed wake-up need words, evaluated in one numpy pass."""

    def __init__(self, n_lanes: int, n_rows: int) -> None:
        if _np is None:  # pragma: no cover - guarded by make_lane_bank
            raise SchedulerError("numpy is not available; use PyLaneWakeupBank")
        if n_lanes <= 0 or n_rows <= 0:
            raise SchedulerError(
                f"lane bank needs positive dimensions, got {n_lanes}x{n_rows}"
            )
        if n_rows > MAX_KERNEL_ROWS:
            raise SchedulerError(
                f"window of {n_rows} rows exceeds the {MAX_KERNEL_ROWS}-row "
                "packed kernel; use PyLaneWakeupBank"
            )
        self.n_lanes = n_lanes
        self.n_rows = n_rows
        self._need = _np.zeros((n_lanes, n_rows), dtype=_np.uint32)
        self._avail = _np.zeros(n_lanes, dtype=_np.uint32)
        #: row weights: reducing a boolean row with these yields the packed
        #: per-lane request mask in one matrix-vector product.
        self._weights = (1 << _np.arange(n_rows, dtype=_np.int64)).astype(
            _np.int64
        )
        #: per-row column-clear masks, precomputed so the per-event update
        #: is a single in-place AND over one lane's row vector.
        self._col_clear = tuple(
            _np.uint32(~(1 << (NUM_FU_TYPES + r)) & 0xFFFFFFFF)
            for r in range(n_rows)
        )

    # ------------------------------------------------------- event updates
    def set_row(self, lane: int, row: int, field: int) -> None:
        """Install one dispatched instruction's packed need field."""
        self._need[lane, row] = field

    def clear_row(self, lane: int, row: int) -> None:
        """Free a row and clear its result column across the lane (the
        scalar ``remove`` + ``clear_column`` pair, one lane only)."""
        need = self._need
        need[lane, row] = 0
        need[lane] &= self._col_clear[row]

    def set_avail(self, lane: int, avail: int) -> None:
        """Install one lane's concatenated availability word for this cycle."""
        self._avail[lane] = avail

    def set_avail_many(self, lanes, avails) -> None:
        """Install this cycle's availability words for many lanes at once.

        ``lanes`` may be any integer index sequence numpy accepts (callers
        keep a cached index array for the active lane set); ``avails`` is
        the matching sequence of packed words.
        """
        self._avail[lanes] = avails

    # ------------------------------------------------------------- kernel
    def requests(self) -> tuple[list[int], list[int]]:
        """Per-lane (request, all-resources-request) packed row masks.

        One vectorized pass over every lane: broadcast each lane's
        availability word across its rows, zero-test the unmet columns,
        and pack the boolean rows into per-lane masks with a weighted
        reduction.  Returns plain Python ints so the per-lane grant logic
        never touches numpy scalars.
        """
        need = self._need
        avail = self._avail
        req = ((need & ~avail[:, None]) == 0) @ self._weights
        alls = ((need & ~(avail | _RES_MASK)[:, None]) == 0) @ self._weights
        return req.tolist(), alls.tolist()


class PyLaneWakeupBank:
    """Pure-Python fallback bank: same API, per-lane row loops.

    Keeps the vector engine importable and correct without numpy (and for
    windows wider than the packed kernel).  Not registered in the HOT007
    hot zone — it is the portability path, not the fast path.
    """

    def __init__(self, n_lanes: int, n_rows: int) -> None:
        if n_lanes <= 0 or n_rows <= 0:
            raise SchedulerError(
                f"lane bank needs positive dimensions, got {n_lanes}x{n_rows}"
            )
        self.n_lanes = n_lanes
        self.n_rows = n_rows
        self._need = [[0] * n_rows for _ in range(n_lanes)]
        self._avail = [0] * n_lanes

    def set_row(self, lane: int, row: int, field: int) -> None:
        self._need[lane][row] = field

    def clear_row(self, lane: int, row: int) -> None:
        lane_need = self._need[lane]
        lane_need[row] = 0
        keep = ~(1 << (NUM_FU_TYPES + row))
        for r, f in enumerate(lane_need):
            if f:
                lane_need[r] = f & keep

    def set_avail(self, lane: int, avail: int) -> None:
        self._avail[lane] = avail

    def set_avail_many(self, lanes, avails) -> None:
        for lane, avail in zip(lanes, avails):
            self._avail[lane] = avail

    def requests(self) -> tuple[list[int], list[int]]:
        """Per-lane (request, all-resources-request) masks, reference form.

        Matches :meth:`LaneWakeupBank.requests` bit for bit, including the
        free-row contract (zero need fields request in both masks).
        """
        req_out: list[int] = []
        all_out: list[int] = []
        for lane_need, avail in zip(self._need, self._avail):
            avail_all = avail | _RES_MASK
            req = alls = 0
            bit = 1
            for f in lane_need:
                if not f & ~avail:
                    req |= bit
                if not f & ~avail_all:
                    alls |= bit
                bit <<= 1
            req_out.append(req)
            all_out.append(alls)
        return req_out, all_out


class LaneCountdownBank:
    """Batched execution count-down timers: the scalar engine's per-cycle
    ``unit.tick()``/``entry.tick()`` sweeps collapsed into one array op.

    One cell per (lane, row) holds the remaining latency of the in-flight
    instruction occupying that wake-up row.  :meth:`advance` decrements
    every in-flight cell simultaneously and reports the cells that just
    reached zero — the result-available transitions — so the vector engine
    pays O(completions) per cycle instead of O(lanes x units).
    """

    def __init__(self, n_lanes: int, n_rows: int) -> None:
        if _np is None:  # pragma: no cover - guarded by make_countdown_bank
            raise SchedulerError("numpy is not available; use PyLaneCountdownBank")
        if n_lanes <= 0 or n_rows <= 0:
            raise SchedulerError(
                f"countdown bank needs positive dimensions, got {n_lanes}x{n_rows}"
            )
        self._cd = _np.zeros((n_lanes, n_rows), dtype=_np.int64)
        self._inflight = _np.zeros((n_lanes, n_rows), dtype=bool)

    def start(self, lane: int, row: int, latency: int) -> None:
        """Arm the timer of a freshly issued instruction."""
        self._cd[lane, row] = latency
        self._inflight[lane, row] = True

    def cancel(self, lane: int, row: int) -> None:
        """Disarm a timer (the row was squashed by a flush)."""
        self._inflight[lane, row] = False

    def clear_lane(self, lane: int) -> None:
        """Disarm every timer of a finished lane."""
        self._inflight[lane, :] = False

    def advance(self) -> list[tuple[int, int]]:
        """One cycle for every armed timer; returns expired (lane, row)s."""
        inflight = self._inflight
        cd = self._cd
        _np.subtract(cd, 1, out=cd, where=inflight)
        done = inflight & (cd == 0)
        if not done.any():
            return []
        inflight &= ~done
        lanes_idx, rows_idx = done.nonzero()
        return [*zip(lanes_idx.tolist(), rows_idx.tolist())]


class PyLaneCountdownBank:
    """Pure-Python fallback timers: per-lane ``{row: remaining}`` maps."""

    def __init__(self, n_lanes: int, n_rows: int) -> None:
        if n_lanes <= 0 or n_rows <= 0:
            raise SchedulerError(
                f"countdown bank needs positive dimensions, got {n_lanes}x{n_rows}"
            )
        self._cd: list[dict[int, int]] = [{} for _ in range(n_lanes)]

    def start(self, lane: int, row: int, latency: int) -> None:
        self._cd[lane][row] = latency

    def cancel(self, lane: int, row: int) -> None:
        self._cd[lane].pop(row, None)

    def clear_lane(self, lane: int) -> None:
        self._cd[lane].clear()

    def advance(self) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        for lane, timers in enumerate(self._cd):
            if not timers:
                continue
            expired = None
            for row in timers:
                left = timers[row] - 1
                timers[row] = left
                if left == 0:
                    if expired is None:
                        expired = [row]
                    else:
                        expired.append(row)
            if expired is not None:
                for row in expired:
                    del timers[row]
                    out.append((lane, row))
        return out


def make_lane_bank(n_lanes: int, n_rows: int) -> LaneWakeupBank | PyLaneWakeupBank:
    """The fastest bank this process supports for the given geometry."""
    if HAVE_NUMPY and n_rows <= MAX_KERNEL_ROWS:
        return LaneWakeupBank(n_lanes, n_rows)
    return PyLaneWakeupBank(n_lanes, n_rows)


def make_countdown_bank(
    n_lanes: int, n_rows: int
) -> LaneCountdownBank | PyLaneCountdownBank:
    """The fastest countdown bank this process supports."""
    if HAVE_NUMPY:
        return LaneCountdownBank(n_lanes, n_rows)
    return PyLaneCountdownBank(n_lanes, n_rows)
