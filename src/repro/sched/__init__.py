"""Instruction scheduling and execution (Section 4 of the paper).

The scheduler is the select-free wake-up array of Brown/Stark/Patt [9]
adapted to a reconfigurable fabric: the resource-available columns are
driven by the Eq. 1 availability circuit, so instructions wake up only when
a unit of their type is *configured and idle* — units appear and disappear
as the fabric reconfigures.

* :mod:`repro.sched.wakeup` — the bit-level wake-up array (Figs. 5 and 6):
  resource vectors, dependency columns, scheduled bits, request logic;
* :mod:`repro.sched.select` — grant arbitration (oldest-first) between
  instructions contending for the same unit type;
* :mod:`repro.sched.regfile` — the architectural register files;
* :mod:`repro.sched.entry` — the in-flight instruction record (dependency
  buffer row: operands, result, count-down timer, store data);
* :mod:`repro.sched.ruu` — the register update unit: dispatch with
  renaming, out-of-order issue, operand forwarding, store buffering,
  branch repair and in-order retirement.
"""

from repro.sched.entry import EntryState, RuuEntry
from repro.sched.regfile import RegisterFile
from repro.sched.ruu import RegisterUpdateUnit
from repro.sched.select import select_grants
from repro.sched.wakeup import WakeupArray

__all__ = [
    "WakeupArray",
    "select_grants",
    "RegisterFile",
    "RuuEntry",
    "EntryState",
    "RegisterUpdateUnit",
]
