"""The in-flight instruction record: one row of the dependency buffer.

Carries everything the register update unit tracks between dispatch and
retirement: source bindings (producer sequence numbers or architectural
reads), the count-down timer the wake-up logic uses to assert the result-
available line, the computed result, and — for memory instructions — the
effective address and buffered store data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.frontend.fetch import FetchedInstruction
from repro.isa.futypes import FUType
from repro.isa.instruction import Instruction

__all__ = ["EntryState", "SourceBinding", "RuuEntry"]


class EntryState(enum.Enum):
    WAITING = "waiting"      # in the wake-up array, not yet granted
    ISSUED = "issued"        # executing on a functional unit
    COMPLETED = "completed"  # result available, awaiting in-order retire


@dataclass(frozen=True, slots=True)
class SourceBinding:
    """Where one source operand comes from."""

    reg_class: str
    index: int
    #: sequence number of the in-flight producer, or None to read the
    #: architectural register file.
    producer_seq: int | None


@dataclass(slots=True)
class RuuEntry:
    """One dispatched instruction."""

    seq: int
    fetched: FetchedInstruction
    #: positional bindings for (src1, src2); None = unused or hard-wired x0.
    sources: tuple[SourceBinding | None, SourceBinding | None]
    state: EntryState = EntryState.WAITING
    # invariant views of ``fetched.instruction``, materialised once at
    # construction: the scheduler reads these every cycle, and a chain of
    # property hops showed up in the per-cycle profile.
    instruction: Instruction = field(init=False)
    fu_type: FUType = field(init=False)
    is_load: bool = field(init=False)
    is_store: bool = field(init=False)
    #: cycles until the result-available line asserts (ISSUED state).
    countdown: int = 0
    #: computed result value (int regs as u32, fp as float), if any.
    result: int | float | None = None
    #: resolved next PC for control instructions.
    actual_next: int | None = None
    #: did this control instruction mispredict?
    mispredicted: bool = False
    # memory instructions -------------------------------------------------
    mem_addr: int | None = None
    mem_size: int | None = None
    store_data: bytes | None = None
    #: unit uid executing/having executed this entry (for unit release on flush).
    unit_uid: int | None = None
    #: cycle the entry was granted execution (trace/debug).
    issue_cycle: int | None = None

    def __post_init__(self) -> None:
        instruction = self.fetched.instruction
        self.instruction = instruction
        self.fu_type = instruction.fu_type
        self.is_load = instruction.is_load
        self.is_store = instruction.is_store

    @property
    def pc(self) -> int:
        return self.fetched.pc

    @property
    def completed(self) -> bool:
        return self.state is EntryState.COMPLETED

    def tick(self) -> None:
        """Advance the count-down timer; completion asserts result-available."""
        if self.state is EntryState.ISSUED:
            if self.countdown > 0:
                self.countdown -= 1
            if self.countdown == 0:
                self.state = EntryState.COMPLETED
