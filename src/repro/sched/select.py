"""Grant arbitration between requesting instructions.

The wake-up logic is select-free [9]: it only raises execution *requests*;
"contention between instructions must be handled by the scheduler after
multiple instructions that use the same resources request execution."
This module is that scheduler: it hands each idle unit to the **oldest**
requesting instruction of its type (oldest-first is the classical
heuristic — older instructions unblock more dependents).

:func:`select_grants` is the *reference* arbitration.  The hot path in
:meth:`repro.sched.ruu.RegisterUpdateUnit.issue_and_execute` inlines the
same policy over its age-ordered window and the wake-up kernel's request
mask (no triple list, no sort); the scheduler equivalence tests pin the
two to identical grant sequences.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.isa.futypes import FUType

__all__ = ["select_grants"]


def select_grants(
    requests: Sequence[tuple[int, int, FUType]],
    idle_units: dict[FUType, int],
) -> list[int]:
    """Choose which requests receive execution grants this cycle.

    ``requests`` holds ``(row, seq, fu_type)`` triples of all rows whose
    wake-up logic asserted a request; ``idle_units`` the number of idle
    units per type.  Returns the granted row indices, oldest (smallest
    seq) first per type.
    """
    remaining = dict(idle_units)
    granted: list[int] = []
    for row, _seq, fu_type in sorted(requests, key=lambda r: r[1]):
        if remaining.get(fu_type, 0) > 0:
            remaining[fu_type] -= 1
            granted.append(row)
    return granted
