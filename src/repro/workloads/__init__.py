"""Workloads: the programs the evaluation runs.

The paper reports no benchmark suite, so the evaluation inputs are built
here (DESIGN.md substitution rule):

* :mod:`repro.workloads.kernels` — real kernels written in the repro ISA
  (reductions, dot products, SAXPY, matrix multiply, memcpy, hashing,
  Newton iteration ...), each with golden expected results so every
  simulator run is also a functional correctness check;
* :mod:`repro.workloads.synthetic` — seeded random programs with a target
  functional-unit mix and dependency density;
* :mod:`repro.workloads.phases` — phase-changing workloads (integer ->
  memory -> floating-point ...) that exercise steering adaptation.
"""

from repro.workloads.kernels import (
    Kernel,
    all_kernels,
    checksum,
    dot_product,
    fir_filter,
    kernel_by_name,
    matmul,
    memcpy,
    newton_sqrt,
    saxpy,
    sum_reduction,
)
from repro.workloads.kernels_extra import (
    bubble_sort,
    extended_kernels,
    fibonacci,
    histogram,
    mandelbrot_point,
    string_length,
    vector_max,
)
from repro.workloads.kernels_numeric import (
    binary_search,
    gcd,
    horner,
    numeric_kernels,
    popcount_soft,
    transpose,
)
from repro.workloads.phases import phased_program
from repro.workloads.synthetic import MixSpec, synthetic_program

__all__ = [
    "Kernel",
    "all_kernels",
    "kernel_by_name",
    "sum_reduction",
    "dot_product",
    "saxpy",
    "fir_filter",
    "matmul",
    "memcpy",
    "checksum",
    "newton_sqrt",
    "bubble_sort",
    "histogram",
    "string_length",
    "fibonacci",
    "mandelbrot_point",
    "vector_max",
    "extended_kernels",
    "gcd",
    "popcount_soft",
    "binary_search",
    "transpose",
    "horner",
    "numeric_kernels",
    "MixSpec",
    "synthetic_program",
    "phased_program",
]
