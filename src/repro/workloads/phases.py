"""Phase-changing workloads for the steering-adaptation experiment (E-PH).

A phased program runs several counted loops back to back, each following a
different instruction mix — e.g. an integer phase, then a memory phase,
then a floating-point phase.  A well-steered processor tracks the phases;
a static configuration matches at most one of them.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import WorkloadError
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.synthetic import MixSpec, _data_section, _prologue, emit_body

__all__ = ["phased_program"]


def phased_program(
    phases: Sequence[tuple[MixSpec, int]],
    body_len: int = 24,
    seed: int = 0,
) -> Program:
    """Concatenate one counted loop per ``(mix, iterations)`` phase."""
    if not phases:
        raise WorkloadError("phased_program needs at least one phase")
    rng = random.Random(seed)
    lines = _data_section()
    lines.append("main:")
    lines += _prologue()
    for k, (mix, iterations) in enumerate(phases):
        if iterations <= 0:
            raise WorkloadError(f"phase {k}: iterations must be positive")
        lines.append(f"li x20, {iterations}")
        lines.append(f"phase{k}:")
        lines += emit_body(rng, mix, body_len)
        lines.append("addi x20, x20, -1")
        lines.append(f"bne x20, x0, phase{k}")
    lines.append("halt")
    return assemble("\n".join(lines))
