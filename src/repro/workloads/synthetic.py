"""Seeded synthetic workload generator.

Generates terminating programs (a counted loop around a generated body)
whose body follows a target functional-unit mix and dependency density.
Useful for sweeping the steering mechanism across instruction-mix regimes
that real kernels only sample sparsely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.isa.assembler import assemble
from repro.isa.futypes import FU_TYPES, FUType
from repro.isa.program import Program

__all__ = ["MixSpec", "synthetic_program", "emit_body", "INT_MIX", "MEM_MIX", "FP_MIX", "BALANCED_MIX"]

_INT_POOL = [f"x{i}" for i in range(1, 10)]
_FP_POOL = [f"f{i}" for i in range(1, 10)]
_BUFFER_WORDS = 64

_INT_ALU_OPS = ["add", "sub", "xor", "and", "or", "sll", "srl"]
_INT_MDU_OPS = ["mul", "mul", "mulh", "div", "rem"]
_FP_ALU_OPS = ["fadd", "fsub", "fmin", "fmax"]
_FP_MDU_OPS = ["fmul", "fmul", "fmul", "fdiv"]


@dataclass(frozen=True)
class MixSpec:
    """A target instruction mix: relative weight per functional-unit type."""

    name: str
    weights: dict[FUType, float]
    #: probability an operand is one of the two most recent results
    #: (higher = longer dependence chains = less ILP).
    dep_density: float = 0.3

    def __post_init__(self) -> None:
        if not self.weights:
            raise WorkloadError(f"mix {self.name!r} has no weights")
        if any(w < 0 for w in self.weights.values()):
            raise WorkloadError(f"mix {self.name!r} has negative weights")
        if sum(self.weights.values()) <= 0:
            raise WorkloadError(f"mix {self.name!r} weights sum to zero")
        if not 0.0 <= self.dep_density <= 1.0:
            raise WorkloadError("dep_density must be in [0, 1]")

    def normalised(self) -> dict[FUType, float]:
        total = sum(self.weights.values())
        return {t: self.weights.get(t, 0.0) / total for t in FU_TYPES}


INT_MIX = MixSpec("int", {FUType.INT_ALU: 0.65, FUType.INT_MDU: 0.3, FUType.LSU: 0.05})
MEM_MIX = MixSpec("mem", {FUType.INT_ALU: 0.25, FUType.LSU: 0.7, FUType.INT_MDU: 0.05})
FP_MIX = MixSpec(
    "fp",
    {FUType.FP_ALU: 0.4, FUType.FP_MDU: 0.35, FUType.LSU: 0.2, FUType.INT_ALU: 0.05},
)
BALANCED_MIX = MixSpec(
    "balanced",
    {
        FUType.INT_ALU: 0.3,
        FUType.INT_MDU: 0.15,
        FUType.LSU: 0.25,
        FUType.FP_ALU: 0.15,
        FUType.FP_MDU: 0.15,
    },
)


class _BodyEmitter:
    """Emits one instruction body following a mix, tracking recent results."""

    def __init__(self, rng: random.Random, mix: MixSpec) -> None:
        self.rng = rng
        self.mix = mix
        self._recent_int: list[str] = []
        self._recent_fp: list[str] = []
        self._mem_cursor = 0

    def _pick(self, pool: list[str], recent: list[str]) -> str:
        if recent and self.rng.random() < self.mix.dep_density:
            return self.rng.choice(recent)
        return self.rng.choice(pool)

    def _produced(self, reg: str, recent: list[str]) -> None:
        recent.append(reg)
        if len(recent) > 2:
            recent.pop(0)

    def _mem_offset(self) -> int:
        self._mem_cursor = (self._mem_cursor + 1) % _BUFFER_WORDS
        return self._mem_cursor * 4

    def emit(self, fu_type: FUType) -> str:
        rng = self.rng
        if fu_type is FUType.INT_ALU:
            op = rng.choice(_INT_ALU_OPS)
            rd = rng.choice(_INT_POOL)
            line = f"{op} {rd}, {self._pick(_INT_POOL, self._recent_int)}, " \
                   f"{self._pick(_INT_POOL, self._recent_int)}"
            self._produced(rd, self._recent_int)
            return line
        if fu_type is FUType.INT_MDU:
            op = rng.choice(_INT_MDU_OPS)
            rd = rng.choice(_INT_POOL)
            line = f"{op} {rd}, {self._pick(_INT_POOL, self._recent_int)}, " \
                   f"{self._pick(_INT_POOL, self._recent_int)}"
            self._produced(rd, self._recent_int)
            return line
        if fu_type is FUType.LSU:
            off = self._mem_offset()
            kind = rng.random()
            if kind < 0.4:
                rd = rng.choice(_INT_POOL)
                self._produced(rd, self._recent_int)
                return f"lw {rd}, buf+{off}(x0)"
            if kind < 0.7:
                rs = self._pick(_INT_POOL, self._recent_int)
                return f"sw {rs}, buf+{off}(x0)"
            if kind < 0.85:
                fd = rng.choice(_FP_POOL)
                self._produced(fd, self._recent_fp)
                return f"flw {fd}, buf+{off}(x0)"
            fs = self._pick(_FP_POOL, self._recent_fp)
            return f"fsw {fs}, buf+{off}(x0)"
        if fu_type is FUType.FP_ALU:
            op = rng.choice(_FP_ALU_OPS)
            fd = rng.choice(_FP_POOL)
            line = f"{op} {fd}, {self._pick(_FP_POOL, self._recent_fp)}, " \
                   f"{self._pick(_FP_POOL, self._recent_fp)}"
            self._produced(fd, self._recent_fp)
            return line
        if fu_type is FUType.FP_MDU:
            op = rng.choice(_FP_MDU_OPS)
            fd = rng.choice(_FP_POOL)
            line = f"{op} {fd}, {self._pick(_FP_POOL, self._recent_fp)}, " \
                   f"{self._pick(_FP_POOL, self._recent_fp)}"
            self._produced(fd, self._recent_fp)
            return line
        raise WorkloadError(f"unknown unit type {fu_type!r}")


def emit_body(rng: random.Random, mix: MixSpec, body_len: int) -> list[str]:
    """Generate ``body_len`` instructions following the mix."""
    if body_len <= 0:
        raise WorkloadError("body_len must be positive")
    weights = mix.normalised()
    types = list(FU_TYPES)
    probs = [weights[t] for t in types]
    emitter = _BodyEmitter(rng, mix)
    return [emitter.emit(rng.choices(types, probs)[0]) for _ in range(body_len)]


def _prologue() -> list[str]:
    """Initialise the register pools with small non-zero values."""
    lines = []
    for i, reg in enumerate(_INT_POOL, start=1):
        lines.append(f"li {reg}, {i * 3 + 1}")
    for i, reg in enumerate(_FP_POOL, start=1):
        lines.append(f"flw {reg}, consts+{(i - 1) * 4}(x0)")
    return lines


def _data_section() -> list[str]:
    consts = ", ".join(repr(0.5 + 0.25 * i) for i in range(len(_FP_POOL)))
    return [
        ".data",
        f"consts: .float {consts}",
        f"buf:    .space {_BUFFER_WORDS * 4}",
        ".text",
    ]


def synthetic_program(
    mix: MixSpec,
    body_len: int = 24,
    iterations: int = 50,
    seed: int = 0,
) -> Program:
    """A terminating synthetic workload: ``iterations`` x a ``body_len``-
    instruction body following ``mix``, plus prologue and loop control."""
    if iterations <= 0:
        raise WorkloadError("iterations must be positive")
    rng = random.Random(seed)
    lines = _data_section()
    lines.append("main:")
    lines += _prologue()
    lines.append(f"li x20, {iterations}")
    lines.append("loop:")
    lines += emit_body(rng, mix, body_len)
    lines.append("addi x20, x20, -1")
    lines.append("bne x20, x0, loop")
    lines.append("halt")
    return assemble("\n".join(lines))
