"""Kernel library: real programs in the repro ISA with golden results.

Every kernel stores its result(s) to labelled data memory and carries the
expected values (computed in Python with matching semantics), so each
simulated run doubles as an end-to-end functional check of the whole
processor.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.frontend.memory import DataMemory
from repro.isa.assembler import assemble
from repro.isa.futypes import FUType
from repro.isa.program import Program
from repro.isa.semantics import f32

__all__ = [
    "Kernel",
    "sum_reduction",
    "dot_product",
    "saxpy",
    "fir_filter",
    "matmul",
    "memcpy",
    "checksum",
    "newton_sqrt",
    "all_kernels",
    "kernel_by_name",
]


@dataclass
class Kernel:
    """A runnable workload with its golden expected memory state."""

    name: str
    description: str
    program: Program
    #: expected u32 words: data label -> value (single-word labels).
    expected_words: dict[str, int] = field(default_factory=dict)
    #: expected float32 values: data label -> value.
    expected_floats: dict[str, float] = field(default_factory=dict)
    #: functional-unit types this kernel stresses.
    dominant: tuple[FUType, ...] = ()

    def verify(self, dmem: DataMemory) -> None:
        """Raise AssertionError unless the memory matches the golden values."""
        for label, expected in self.expected_words.items():
            addr = self.program.data_labels[label]
            got = dmem.peek_word(addr)
            assert got == expected & 0xFFFFFFFF, (
                f"{self.name}: word {label}@{addr}: got {got:#x}, "
                f"expected {expected & 0xFFFFFFFF:#x}"
            )
        for label, expected in self.expected_floats.items():
            addr = self.program.data_labels[label]
            got = dmem.peek_float(addr)
            assert got == f32(expected) or math.isclose(
                got, expected, rel_tol=1e-5
            ), f"{self.name}: float {label}@{addr}: got {got}, expected {expected}"


def _int_array(values: list[int]) -> str:
    return ", ".join(str(v) for v in values)


def _float_array(values: list[float]) -> str:
    return ", ".join(repr(float(v)) for v in values)


# --------------------------------------------------------------------------
def sum_reduction(n: int = 64) -> Kernel:
    """Integer sum over an array: load/store + integer ALU."""
    data = [(i * 7 + 3) % 101 for i in range(n)]
    src = f"""
    .data
    arr:    .word {_int_array(data)}
    result: .word 0
    .text
    main:   li   x1, 0
            li   x2, {n * 4}
            li   x3, 0
    loop:   lw   x4, arr(x1)
            add  x3, x3, x4
            addi x1, x1, 4
            blt  x1, x2, loop
            sw   x3, result(x0)
            halt
    """
    return Kernel(
        name="sum_reduction",
        description=f"integer sum over {n} words (LSU + INT_ALU)",
        program=assemble(src),
        expected_words={"result": sum(data)},
        dominant=(FUType.LSU, FUType.INT_ALU),
    )


def dot_product(n: int = 48) -> Kernel:
    """Integer dot product: loads + integer multiply/accumulate."""
    a = [(i * 3 + 1) % 17 for i in range(n)]
    b = [(i * 5 + 2) % 13 for i in range(n)]
    src = f"""
    .data
    va:     .word {_int_array(a)}
    vb:     .word {_int_array(b)}
    result: .word 0
    .text
    main:   li   x1, 0
            li   x2, {n * 4}
            li   x3, 0
    loop:   lw   x4, va(x1)
            lw   x5, vb(x1)
            mul  x6, x4, x5
            add  x3, x3, x6
            addi x1, x1, 4
            blt  x1, x2, loop
            sw   x3, result(x0)
            halt
    """
    return Kernel(
        name="dot_product",
        description=f"integer dot product of {n}-vectors (LSU + INT_MDU)",
        program=assemble(src),
        expected_words={"result": sum(x * y for x, y in zip(a, b))},
        dominant=(FUType.LSU, FUType.INT_MDU),
    )


def saxpy(n: int = 40, a: float = 2.5) -> Kernel:
    """Single-precision y = a*x + y (FP multiply + add + memory)."""
    xs = [f32(0.5 * i - 3.0) for i in range(n)]
    ys = [f32(0.25 * i + 1.0) for i in range(n)]
    expected_last = f32(f32(a) * xs[-1] + ys[-1])
    src = f"""
    .data
    scale:  .float {a!r}
    vx:     .float {_float_array(xs)}
    vy:     .float {_float_array(ys)}
    .text
    main:   flw  f1, scale(x0)
            li   x1, 0
            li   x2, {n * 4}
    loop:   flw  f2, vx(x1)
            flw  f3, vy(x1)
            fmul f4, f1, f2
            fadd f5, f4, f3
            fsw  f5, vy(x1)
            addi x1, x1, 4
            blt  x1, x2, loop
            halt
    """
    kernel = Kernel(
        name="saxpy",
        description=f"float32 y = {a}*x + y over {n} elements (FP units + LSU)",
        program=assemble(src),
        dominant=(FUType.FP_ALU, FUType.FP_MDU, FUType.LSU),
    )
    # the last element of vy is a labelled offset check via expected_floats
    # on the vy label itself (first element) and a synthetic label check:
    kernel.expected_floats["vy"] = f32(f32(a) * xs[0] + ys[0])
    kernel._expected_last = expected_last  # type: ignore[attr-defined]
    return kernel


def fir_filter(n: int = 32, taps: list[float] | None = None) -> Kernel:
    """4-tap FIR filter over a float signal (FP-heavy with reuse)."""
    if taps is None:
        taps = [0.25, 0.5, 0.125, 0.0625]
    if len(taps) != 4:
        raise WorkloadError("fir_filter ships with exactly 4 taps")
    signal = [f32(math.sin(0.3 * i)) for i in range(n + 4)]
    # golden model mirrors the kernel's association: (h0*s0 + h1*s1) +
    # (h2*s2 + h3*s3), each operation rounded to float32
    out = []
    for i in range(n):
        p = [f32(f32(taps[j]) * signal[i + j]) for j in range(4)]
        out.append(f32(f32(p[0] + p[1]) + f32(p[2] + p[3])))
    src = f"""
    .data
    taps:   .float {_float_array(taps)}
    sig:    .float {_float_array(signal)}
    out:    .space {n * 4}
    .text
    main:   flw  f10, taps+0(x0)
            flw  f11, taps+4(x0)
            flw  f12, taps+8(x0)
            flw  f13, taps+12(x0)
            li   x1, 0
            li   x2, {n * 4}
    loop:   flw  f2, sig+0(x1)
            flw  f3, sig+4(x1)
            fmul f4, f10, f2
            fmul f5, f11, f3
            fadd f6, f4, f5
            flw  f2, sig+8(x1)
            flw  f3, sig+12(x1)
            fmul f4, f12, f2
            fmul f5, f13, f3
            fadd f7, f4, f5
            fadd f8, f6, f7
            fsw  f8, out(x1)
            addi x1, x1, 4
            blt  x1, x2, loop
            halt
    """
    kernel = Kernel(
        name="fir_filter",
        description=f"4-tap float32 FIR over {n} samples (FP_MDU + FP_ALU)",
        program=assemble(src),
        dominant=(FUType.FP_MDU, FUType.FP_ALU),
    )
    kernel.expected_floats["out"] = out[0]
    kernel._expected_out = out  # type: ignore[attr-defined]
    return kernel


def matmul(n: int = 6) -> Kernel:
    """Dense integer n x n matrix multiply (INT_MDU + LSU heavy)."""
    a = [[(i * n + j + 1) % 9 for j in range(n)] for i in range(n)]
    b = [[(i + 2 * j + 1) % 7 for j in range(n)] for i in range(n)]
    c = [
        [sum(a[i][k] * b[k][j] for k in range(n)) for j in range(n)]
        for i in range(n)
    ]
    flat_a = [v for row in a for v in row]
    flat_b = [v for row in b for v in row]
    src = f"""
    .data
    ma:     .word {_int_array(flat_a)}
    mb:     .word {_int_array(flat_b)}
    mc:     .space {n * n * 4}
    .text
    main:   li   x10, {n}
            li   x1, 0          # i
    iloop:  li   x2, 0          # j
    jloop:  li   x3, 0          # k
            li   x4, 0          # acc
    kloop:  mul  x5, x1, x10
            add  x5, x5, x3
            slli x5, x5, 2
            lw   x6, ma(x5)     # a[i][k]
            mul  x5, x3, x10
            add  x5, x5, x2
            slli x5, x5, 2
            lw   x7, mb(x5)     # b[k][j]
            mul  x8, x6, x7
            add  x4, x4, x8
            addi x3, x3, 1
            blt  x3, x10, kloop
            mul  x5, x1, x10
            add  x5, x5, x2
            slli x5, x5, 2
            sw   x4, mc(x5)     # c[i][j]
            addi x2, x2, 1
            blt  x2, x10, jloop
            addi x1, x1, 1
            blt  x1, x10, iloop
            halt
    """
    kernel = Kernel(
        name="matmul",
        description=f"integer {n}x{n} matrix multiply (INT_MDU + LSU)",
        program=assemble(src),
        dominant=(FUType.INT_MDU, FUType.LSU),
    )
    kernel.expected_words["mc"] = c[0][0]
    kernel._expected_matrix = c  # type: ignore[attr-defined]
    return kernel


def memcpy(n: int = 96) -> Kernel:
    """Word copy loop: pure load/store traffic."""
    data = [(i * 2654435761) & 0xFFFFFFFF for i in range(n)]
    src = f"""
    .data
    src:    .word {_int_array([v if v < 2**31 else v - 2**32 for v in data])}
    dst:    .space {n * 4}
    .text
    main:   li   x1, 0
            li   x2, {n * 4}
    loop:   lw   x3, src(x1)
            sw   x3, dst(x1)
            addi x1, x1, 4
            blt  x1, x2, loop
            halt
    """
    kernel = Kernel(
        name="memcpy",
        description=f"word copy of {n} words (pure LSU)",
        program=assemble(src),
        dominant=(FUType.LSU,),
    )
    kernel.expected_words["dst"] = data[0]
    kernel._expected_data = data  # type: ignore[attr-defined]
    return kernel


def checksum(iterations: int = 200, seed: int = 0x1234) -> Kernel:
    """xorshift32 hashing loop: pure integer ALU (shifts + xors)."""
    x = seed & 0xFFFFFFFF
    for _ in range(iterations):
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
    src = f"""
    .data
    result: .word 0
    .text
    main:   li   x1, {seed}
            li   x2, {iterations}
    loop:   slli x3, x1, 13
            xor  x1, x1, x3
            srli x3, x1, 17
            xor  x1, x1, x3
            slli x3, x1, 5
            xor  x1, x1, x3
            addi x2, x2, -1
            bne  x2, x0, loop
            sw   x1, result(x0)
            halt
    """
    return Kernel(
        name="checksum",
        description=f"xorshift32 x{iterations} (pure INT_ALU)",
        program=assemble(src),
        expected_words={"result": x},
        dominant=(FUType.INT_ALU,),
    )


def newton_sqrt(value: float = 2.0, iterations: int = 12) -> Kernel:
    """Newton iteration for sqrt(value): FP-divide heavy."""
    half = f32(0.5)
    v = f32(value)
    x = f32(value)
    for _ in range(iterations):
        x = f32(half * f32(x + f32(v / x)))
    src = f"""
    .data
    value:  .float {value!r}
    half:   .float 0.5
    result: .float 0.0
    .text
    main:   flw  f1, value(x0)
            flw  f2, half(x0)
            fmov f3, f1
            li   x1, {iterations}
    loop:   fdiv f4, f1, f3
            fadd f5, f3, f4
            fmul f3, f2, f5
            addi x1, x1, -1
            bne  x1, x0, loop
            fsw  f3, result(x0)
            halt
    """
    return Kernel(
        name="newton_sqrt",
        description=f"Newton sqrt({value}) x{iterations} (FP_MDU divides)",
        program=assemble(src),
        expected_floats={"result": x},
        dominant=(FUType.FP_MDU,),
    )


# --------------------------------------------------------------------------
def all_kernels() -> list[Kernel]:
    """One instance of every kernel at its default size."""
    return [
        sum_reduction(),
        dot_product(),
        saxpy(),
        fir_filter(),
        matmul(),
        memcpy(),
        checksum(),
        newton_sqrt(),
    ]


def kernel_by_name(name: str, **kwargs) -> Kernel:
    from repro.workloads import kernels_extra, kernels_numeric

    factories = {
        "sum_reduction": sum_reduction,
        "dot_product": dot_product,
        "saxpy": saxpy,
        "fir_filter": fir_filter,
        "matmul": matmul,
        "memcpy": memcpy,
        "checksum": checksum,
        "newton_sqrt": newton_sqrt,
        "bubble_sort": kernels_extra.bubble_sort,
        "histogram": kernels_extra.histogram,
        "string_length": kernels_extra.string_length,
        "fibonacci": kernels_extra.fibonacci,
        "mandelbrot_point": kernels_extra.mandelbrot_point,
        "vector_max": kernels_extra.vector_max,
        "gcd": kernels_numeric.gcd,
        "popcount_soft": kernels_numeric.popcount_soft,
        "binary_search": kernels_numeric.binary_search,
        "transpose": kernels_numeric.transpose,
        "horner": kernels_numeric.horner,
    }
    try:
        return factories[name](**kwargs)
    except KeyError:
        raise WorkloadError(f"unknown kernel {name!r}") from None
