"""Extended kernel library: control- and byte-level workloads.

These complement :mod:`repro.workloads.kernels` with codes that stress the
parts of the processor the core suite touches lightly: data-dependent
branches (sorting), byte loads/stores (string ops), deep recursion-free
call chains, heavy integer multiply chains (fixed-point Mandelbrot) and
FP comparisons.
"""

from __future__ import annotations

import struct

from repro.isa.assembler import assemble
from repro.isa.futypes import FUType
from repro.isa.semantics import f32
from repro.workloads.kernels import Kernel, _float_array, _int_array

__all__ = [
    "bubble_sort",
    "histogram",
    "string_length",
    "fibonacci",
    "mandelbrot_point",
    "vector_max",
    "extended_kernels",
]


def bubble_sort(n: int = 24) -> Kernel:
    """In-place bubble sort: data-dependent branches galore."""
    data = [(i * 17 + 7) % 101 for i in range(n)]
    expected = sorted(data)
    src = f"""
    .data
    arr: .word {_int_array(data)}
    .text
    main:   li   x1, {n - 1}        # outer remaining passes
    outer:  li   x2, 0              # byte index
            li   x3, {(n - 1) * 4}  # last pair offset
    inner:  lw   x4, arr(x2)
            lw   x5, arr+4(x2)
            ble  x4, x5, noswap
            sw   x5, arr(x2)
            sw   x4, arr+4(x2)
    noswap: addi x2, x2, 4
            blt  x2, x3, inner
            addi x1, x1, -1
            bne  x1, x0, outer
            halt
    """
    kernel = Kernel(
        name="bubble_sort",
        description=f"bubble sort of {n} words (branchy, LSU + INT_ALU)",
        program=assemble(src),
        dominant=(FUType.LSU, FUType.INT_ALU),
    )
    kernel.expected_words["arr"] = expected[0]
    kernel._expected_sorted = expected  # type: ignore[attr-defined]
    return kernel


def histogram(n: int = 64, buckets: int = 8) -> Kernel:
    """Bucketed histogram: indexed stores with read-modify-write."""
    data = [(i * 31 + 11) % 256 for i in range(n)]
    counts = [0] * buckets
    for v in data:
        counts[v % buckets] += 1
    src = f"""
    .data
    data: .word {_int_array(data)}
    hist: .space {buckets * 4}
    .text
    main:   li   x1, 0
            li   x2, {n * 4}
    loop:   lw   x3, data(x1)
            andi x3, x3, {buckets - 1}
            slli x3, x3, 2
            lw   x4, hist(x3)
            addi x4, x4, 1
            sw   x4, hist(x3)
            addi x1, x1, 4
            blt  x1, x2, loop
            halt
    """
    kernel = Kernel(
        name="histogram",
        description=f"{buckets}-bucket histogram over {n} words (dependent LSU)",
        program=assemble(src),
        dominant=(FUType.LSU, FUType.INT_ALU),
    )
    kernel.expected_words["hist"] = counts[0]
    kernel._expected_counts = counts  # type: ignore[attr-defined]
    return kernel


def string_length(text: str = "the quick brown fox jumps over the lazy dog") -> Kernel:
    """strlen over a NUL-terminated byte string (byte loads)."""
    raw = text.encode("ascii")
    src = f"""
    .data
    str:    .space {len(raw) + 1}
    .align 4
    result: .word 0
    .text
    main:   li   x1, 0
    loop:   lbu  x2, str(x1)
            beq  x2, x0, done
            addi x1, x1, 1
            j    loop
    done:   sw   x1, result(x0)
            halt
    """
    program = assemble(src)
    program.data[0 : len(raw)] = raw  # initialise the string bytes
    kernel = Kernel(
        name="string_length",
        description=f"strlen of a {len(raw)}-byte string (byte LSU + branches)",
        program=program,
        dominant=(FUType.LSU, FUType.INT_ALU),
    )
    kernel.expected_words["result"] = len(raw)
    return kernel


def fibonacci(n: int = 30) -> Kernel:
    """Iterative Fibonacci mod 2^32: a pure dependent-ALU chain."""
    a, b = 0, 1
    for _ in range(n):
        a, b = b, (a + b) & 0xFFFFFFFF
    src = f"""
    .data
    result: .word 0
    .text
    main:   li   x1, 0       # a
            li   x2, 1       # b
            li   x3, {n}
    loop:   add  x4, x1, x2
            mv   x1, x2
            mv   x2, x4
            addi x3, x3, -1
            bne  x3, x0, loop
            sw   x1, result(x0)
            halt
    """
    return Kernel(
        name="fibonacci",
        description=f"fib({n}) iteratively (serial INT_ALU chain)",
        program=assemble(src),
        expected_words={"result": a},
        dominant=(FUType.INT_ALU,),
    )


def mandelbrot_point(cr_fx: int = -48, ci_fx: int = 40, max_iter: int = 40) -> Kernel:
    """Fixed-point (Q6.6) Mandelbrot escape iteration for one point.

    Heavy integer multiply chain with a data-dependent exit branch; stores
    the iteration count at escape (|z|^2 > 4).
    """
    SHIFT = 6
    FOUR = 4 << (2 * SHIFT)  # compare against |z|^2 in Q12.12
    zr, zi, it = 0, 0, 0
    while it < max_iter:
        zr2, zi2 = zr * zr, zi * zi
        if zr2 + zi2 > FOUR:
            break
        new_zr = ((zr2 - zi2) >> SHIFT) + cr_fx
        zi = ((2 * zr * zi) >> SHIFT) + ci_fx
        zr = new_zr
        it += 1
    src = f"""
    .data
    result: .word 0
    .text
    main:   li   x1, {cr_fx}     # cr
            li   x2, {ci_fx}     # ci
            li   x3, 0           # zr
            li   x4, 0           # zi
            li   x5, 0           # iterations
            li   x6, {max_iter}
            li   x7, {FOUR}
    loop:   bge  x5, x6, done
            mul  x8, x3, x3      # zr^2   (Q12.12)
            mul  x9, x4, x4      # zi^2
            add  x10, x8, x9
            bgt  x10, x7, done   # escaped
            sub  x10, x8, x9
            srai x10, x10, {SHIFT}
            add  x10, x10, x1    # new zr
            mul  x11, x3, x4
            slli x11, x11, 1
            srai x11, x11, {SHIFT}
            add  x4, x11, x2     # new zi
            mv   x3, x10
            addi x5, x5, 1
            j    loop
    done:   sw   x5, result(x0)
            halt
    """
    return Kernel(
        name="mandelbrot_point",
        description=f"Q6.6 Mandelbrot escape iteration (INT_MDU chain, {max_iter} max)",
        program=assemble(src),
        expected_words={"result": it},
        dominant=(FUType.INT_MDU, FUType.INT_ALU),
    )


def vector_max(n: int = 48) -> Kernel:
    """Maximum of a float vector via FP compares + fmax."""
    import math

    xs = [f32(math.sin(1.7 * i) * (i % 11)) for i in range(n)]
    src = f"""
    .data
    xs:     .float {_float_array(xs)}
    result: .float 0.0
    .text
    main:   flw  f1, xs(x0)
            li   x1, 4
            li   x2, {n * 4}
    loop:   flw  f2, xs(x1)
            fmax f1, f1, f2
            addi x1, x1, 4
            blt  x1, x2, loop
            fsw  f1, result(x0)
            halt
    """
    return Kernel(
        name="vector_max",
        description=f"float max-reduction over {n} elements (FP_ALU chain)",
        program=assemble(src),
        expected_floats={"result": max(xs)},
        dominant=(FUType.FP_ALU, FUType.LSU),
    )


def extended_kernels() -> list[Kernel]:
    """One instance of every extended kernel at its default size."""
    return [
        bubble_sort(),
        histogram(),
        string_length(),
        fibonacci(),
        mandelbrot_point(),
        vector_max(),
    ]
