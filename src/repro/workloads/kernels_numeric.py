"""Third kernel batch: classic numeric / bit-twiddling routines.

Rounds out the workload suite with algorithms whose *control structure*
differs from the array loops of the core suite: Euclid's GCD (data-
dependent loop count on the divider), software popcount (long ALU chains),
binary search (unpredictable branches over memory), matrix transpose
(strided stores) and a polynomial evaluation via Horner's rule (serial
FP multiply-add recurrence).
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.futypes import FUType
from repro.isa.semantics import f32
from repro.workloads.kernels import Kernel, _float_array, _int_array

__all__ = [
    "gcd",
    "popcount_soft",
    "binary_search",
    "transpose",
    "horner",
    "numeric_kernels",
]


def gcd(a: int = 1071, b: int = 462) -> Kernel:
    """Euclid's algorithm by remainder: div-unit bound, branchy."""
    import math

    src = f"""
    .data
    result: .word 0
    .text
    main:   li   x1, {a}
            li   x2, {b}
    loop:   beq  x2, x0, done
            remu x3, x1, x2
            mv   x1, x2
            mv   x2, x3
            j    loop
    done:   sw   x1, result(x0)
            halt
    """
    return Kernel(
        name="gcd",
        description=f"gcd({a}, {b}) by Euclid's remainder loop (INT_MDU divides)",
        program=assemble(src),
        expected_words={"result": math.gcd(a, b)},
        dominant=(FUType.INT_MDU, FUType.INT_ALU),
    )


def popcount_soft(n: int = 32) -> Kernel:
    """Software popcount over an array (shift/mask ALU chains)."""
    data = [(i * 2654435761) & 0xFFFFFFFF for i in range(n)]
    total = sum(bin(v).count("1") for v in data)
    src = f"""
    .data
    data:   .word {_int_array([v - 2**32 if v >= 2**31 else v for v in data])}
    result: .word 0
    .text
    main:   li   x1, 0
            li   x2, {n * 4}
            li   x3, 0          # total
    loop:   lw   x4, data(x1)
    bits:   beq  x4, x0, next
            addi x5, x4, -1
            and  x4, x4, x5     # clear lowest set bit (Kernighan)
            addi x3, x3, 1
            j    bits
    next:   addi x1, x1, 4
            blt  x1, x2, loop
            sw   x3, result(x0)
            halt
    """
    return Kernel(
        name="popcount_soft",
        description=f"Kernighan popcount over {n} words (serial INT_ALU)",
        program=assemble(src),
        expected_words={"result": total},
        dominant=(FUType.INT_ALU,),
    )


def binary_search(n: int = 64, needle_index: int = 41) -> Kernel:
    """Binary search in a sorted array: unpredictable branches."""
    data = sorted({(i * 37 + 5) % 4096 for i in range(n * 2)})[:n]
    needle = data[needle_index % len(data)]
    expected = data.index(needle)
    src = f"""
    .data
    arr:    .word {_int_array(data)}
    result: .word 0
    .text
    main:   li   x1, 0              # lo
            li   x2, {len(data) - 1}  # hi
            li   x3, {needle}
            li   x9, -1             # result index
    loop:   bgt  x1, x2, done
            add  x4, x1, x2
            srli x4, x4, 1          # mid
            slli x5, x4, 2
            lw   x6, arr(x5)
            beq  x6, x3, found
            blt  x6, x3, golow
            addi x2, x4, -1
            j    loop
    golow:  addi x1, x4, 1
            j    loop
    found:  mv   x9, x4
    done:   sw   x9, result(x0)
            halt
    """
    return Kernel(
        name="binary_search",
        description=f"binary search in {len(data)} sorted words (branchy LSU)",
        program=assemble(src),
        expected_words={"result": expected},
        dominant=(FUType.LSU, FUType.INT_ALU),
    )


def transpose(n: int = 8) -> Kernel:
    """n x n word-matrix transpose: strided loads/stores."""
    a = [[(i * n + j + 1) % 251 for j in range(n)] for i in range(n)]
    src = f"""
    .data
    ma:  .word {_int_array([v for row in a for v in row])}
    mt:  .space {n * n * 4}
    .text
    main:   li   x10, {n}
            li   x1, 0          # i
    iloop:  li   x2, 0          # j
    jloop:  mul  x3, x1, x10
            add  x3, x3, x2
            slli x3, x3, 2
            lw   x4, ma(x3)
            mul  x5, x2, x10
            add  x5, x5, x1
            slli x5, x5, 2
            sw   x4, mt(x5)
            addi x2, x2, 1
            blt  x2, x10, jloop
            addi x1, x1, 1
            blt  x1, x10, iloop
            halt
    """
    kernel = Kernel(
        name="transpose",
        description=f"{n}x{n} matrix transpose (strided LSU + INT_MDU indexing)",
        program=assemble(src),
        dominant=(FUType.LSU, FUType.INT_MDU),
    )
    kernel.expected_words["mt"] = a[0][0]
    kernel._expected_t = [[a[j][i] for j in range(n)] for i in range(n)]  # type: ignore[attr-defined]
    return kernel


def horner(coeffs: list[float] | None = None, x: float = 1.25) -> Kernel:
    """Polynomial evaluation by Horner's rule: serial FP mul-add chain."""
    if coeffs is None:
        coeffs = [1.0, -0.5, 0.25, -0.125, 0.0625, 2.0, -1.5, 0.75]
    acc = f32(coeffs[0])
    for c in coeffs[1:]:
        acc = f32(f32(acc * f32(x)) + f32(c))
    src = f"""
    .data
    cs:     .float {_float_array(coeffs)}
    xv:     .float {x!r}
    result: .float 0.0
    .text
    main:   flw  f1, xv(x0)
            flw  f2, cs(x0)      # acc = c0
            li   x1, 4
            li   x2, {len(coeffs) * 4}
    loop:   bge  x1, x2, done
            fmul f2, f2, f1
            flw  f3, cs(x1)
            fadd f2, f2, f3
            addi x1, x1, 4
            j    loop
    done:   fsw  f2, result(x0)
            halt
    """
    return Kernel(
        name="horner",
        description=f"degree-{len(coeffs) - 1} Horner evaluation (serial FP chain)",
        program=assemble(src),
        expected_floats={"result": acc},
        dominant=(FUType.FP_MDU, FUType.FP_ALU),
    )


def numeric_kernels() -> list[Kernel]:
    """One instance of every numeric kernel at its default size."""
    return [gcd(), popcount_soft(), binary_search(), transpose(), horner()]
