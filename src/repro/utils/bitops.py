"""Bit-manipulation primitives used throughout the circuit and ISA models.

All functions operate on plain Python ints treated as fixed-width unsigned
bit vectors; widths are explicit arguments so the circuit models can stay
faithful to their hardware counterparts.
"""

from __future__ import annotations

__all__ = [
    "mask",
    "bit",
    "bits",
    "set_bits",
    "popcount",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "ones",
    "reverse_bits",
]


def mask(width: int) -> int:
    """Return a mask of ``width`` low-order one bits (``width`` may be 0)."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (0 = LSB) of ``value`` as 0 or 1."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return (value >> index) & 1


def bits(value: int, high: int, low: int) -> int:
    """Return the bit field ``value[high:low]`` inclusive, right-aligned."""
    if high < low:
        raise ValueError(f"bit range [{high}:{low}] is empty")
    return (value >> low) & mask(high - low + 1)


def set_bits(value: int, high: int, low: int, field: int) -> int:
    """Return ``value`` with the inclusive field ``[high:low]`` replaced by ``field``."""
    if high < low:
        raise ValueError(f"bit range [{high}:{low}] is empty")
    width = high - low + 1
    if field < 0 or field > mask(width):
        raise ValueError(f"field {field:#x} does not fit in {width} bits")
    cleared = value & ~(mask(width) << low)
    return cleared | (field << low)


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative values only")
    return value.bit_count()


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    sign = 1 << (width - 1)
    return (value ^ sign) - sign


def to_signed(value: int, width: int) -> int:
    """Alias of :func:`sign_extend` (reads better at call sites)."""
    return sign_extend(value, width)


def to_unsigned(value: int, width: int) -> int:
    """Truncate a (possibly negative) integer to ``width`` unsigned bits."""
    return value & mask(width)


def ones(value: int, width: int) -> list[int]:
    """Indices of set bits of ``value`` within the low ``width`` bits, ascending."""
    return [i for i in range(width) if (value >> i) & 1]


def reverse_bits(value: int, width: int) -> int:
    """Bit-reverse ``value`` within ``width`` bits."""
    out = 0
    for i in range(width):
        out = (out << 1) | ((value >> i) & 1)
    return out
