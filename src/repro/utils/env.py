"""The one place the model reads the process environment.

Environment variables are hidden inputs: a simulation whose behaviour
depends on one produces results that a content-addressed cache key (see
:func:`repro.evaluation.batch.job_key`) cannot distinguish.  The DET004
lint rule therefore bans ``os.environ``/``os.getenv`` everywhere in the
model layers except the modules named under ``scopes.config_modules`` in
``analysis/layers.toml`` — which is this module.  Debug toggles that may
legitimately come from the environment (they change *checking*, never
results) are read here, once, through :func:`env_flag`.
"""

from __future__ import annotations

import os

__all__ = ["env_flag"]

#: values treated as "unset/false" for boolean debug toggles.
_FALSE_VALUES = ("", "0", "false", "no", "off")


def env_flag(name: str, default: bool = False) -> bool:
    """Read a boolean debug toggle from the environment.

    Unset or an empty/"0"/"false"/"no"/"off" value (case-insensitive)
    yields ``default``-or-False semantics: an unset variable returns
    ``default``, a set-but-falsy value returns False, anything else True.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSE_VALUES
