"""Canonical JSON encoding for result payloads.

Everything that persists or compares a result record — the golden-trace
corpus (``repro.verify.goldens``), the batch engine's ``ResultCache``
index, the ``RunStore``'s metric/spec payloads, the CLI's ``--json``
output — must serialise through :func:`canonical_dumps`, so that one
byte string corresponds to one value on every platform:

* object keys are sorted (``sort_keys=True``),
* separators carry no incidental whitespace (compact form) unless the
  caller asks for a ``pretty`` human-reviewable rendering,
* non-finite floats (NaN, +/-Inf) are rejected instead of being emitted
  as the non-standard ``NaN``/``Infinity`` tokens,
* negative zero is normalised to ``0.0`` (the two compare equal but
  render differently), and
* output is ASCII-only (``ensure_ascii=True``).

Float formatting itself relies on ``repr``'s shortest-round-trip
algorithm, which is identical across CPython platforms for IEEE-754
doubles — combined with the rules above, equal values always produce
equal bytes.  The ``DET005`` lint rule enforces that the modules listed
under ``[scopes] canonical_json`` in ``analysis/layers.toml`` never
call ``json.dumps`` directly.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["canonical_dumps", "canonical_normalise"]


def canonical_normalise(obj: Any, _path: str = "$") -> Any:
    """Validate and normalise a JSON-serialisable value.

    Returns an equal structure with ``-0.0`` rewritten to ``0.0``;
    raises :class:`~repro.errors.ConfigurationError` (with the offending
    path) on non-finite floats or values JSON cannot represent.
    """
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise ConfigurationError(
                f"non-finite float at {_path} cannot be canonically encoded"
            )
        return 0.0 if obj == 0.0 else obj
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, (str, int, float, bool)) and key is not None:
                raise ConfigurationError(
                    f"non-scalar object key {key!r} at {_path}"
                )
            out[key] = canonical_normalise(value, f"{_path}.{key}")
        return out
    if isinstance(obj, (list, tuple)):
        return [
            canonical_normalise(v, f"{_path}[{i}]") for i, v in enumerate(obj)
        ]
    raise ConfigurationError(
        f"value of type {type(obj).__name__} at {_path} is not JSON-serialisable"
    )


def canonical_dumps(obj: Any, *, pretty: bool = False) -> str:
    """Serialise ``obj`` to the canonical JSON byte-for-byte form.

    ``pretty`` switches to an indented rendering (for committed,
    human-reviewed files like the golden corpus); key order and float
    formatting are identical in both modes, so the two renderings parse
    to the same value and differ only in whitespace.
    """
    normalised = canonical_normalise(obj)
    if pretty:
        return json.dumps(
            normalised, sort_keys=True, allow_nan=False, indent=2,
            ensure_ascii=True,
        )
    return json.dumps(
        normalised, sort_keys=True, allow_nan=False, separators=(",", ":"),
        ensure_ascii=True,
    )
