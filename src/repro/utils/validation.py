"""Small argument-validation helpers with uniform error messages."""

from __future__ import annotations

from repro.utils.bitops import mask

__all__ = ["check_in_range", "check_non_negative", "check_width", "check_positive"]


def check_in_range(name: str, value: int, low: int, high: int) -> int:
    """Raise ``ValueError`` unless ``low <= value <= high``; return ``value``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_non_negative(name: str, value: int) -> int:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_positive(name: str, value: int) -> int:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_width(name: str, value: int, width: int) -> int:
    """Raise ``ValueError`` unless ``value`` fits in ``width`` unsigned bits."""
    if value < 0 or value > mask(width):
        raise ValueError(f"{name} must fit in {width} bits, got {value:#x}")
    return value
