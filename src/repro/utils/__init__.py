"""Shared low-level helpers: bit manipulation and argument validation."""

from repro.utils.bitops import (
    bit,
    bits,
    mask,
    popcount,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.utils.validation import check_in_range, check_non_negative, check_width

__all__ = [
    "bit",
    "bits",
    "mask",
    "popcount",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "check_in_range",
    "check_non_negative",
    "check_width",
]
