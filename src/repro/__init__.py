"""repro: configuration steering for a reconfigurable superscalar processor.

A complete reproduction of Veale, Antonio & Tull, *"Configuration Steering
for a Reconfigurable Superscalar Processor"* (IPDPS/RAW 2005): the
configuration-selection circuits (Figs. 2-3), the wake-up-array scheduler
(Figs. 4-6), the availability logic (Fig. 7 / Eq. 1), the partially
reconfigurable fabric, a cycle-level superscalar processor that executes a
small RISC ISA, and the evaluation harness that regenerates every table
and figure.

Quick start::

    from repro import assemble, steering_processor

    program = assemble('''
        li   x1, 100
    loop:
        addi x1, x1, -1
        bne  x1, x0, loop
        halt
    ''')
    result = steering_processor(program).run()
    print(result.summary())
"""

from repro.core import (
    DemandSteering,
    NoSteering,
    OracleSteering,
    PaperSteering,
    Processor,
    ProcessorParams,
    RandomSteering,
    SimulationResult,
    StaticConfiguration,
    fixed_superscalar,
    oracle_processor,
    policy_catalogue,
    steering_processor,
)
from repro.fabric import (
    Configuration,
    Fabric,
    PREDEFINED_CONFIGS,
    steering_table,
)
from repro.isa import FUType, Instruction, Opcode, Program, assemble, disassemble
from repro.steering import ConfigurationManager, ConfigurationSelectionUnit

__version__ = "1.0.0"

__all__ = [
    "assemble",
    "disassemble",
    "Program",
    "Instruction",
    "Opcode",
    "FUType",
    "Configuration",
    "PREDEFINED_CONFIGS",
    "steering_table",
    "Fabric",
    "ConfigurationManager",
    "ConfigurationSelectionUnit",
    "Processor",
    "ProcessorParams",
    "SimulationResult",
    "PaperSteering",
    "NoSteering",
    "StaticConfiguration",
    "RandomSteering",
    "OracleSteering",
    "DemandSteering",
    "fixed_superscalar",
    "steering_processor",
    "oracle_processor",
    "policy_catalogue",
    "__version__",
]
