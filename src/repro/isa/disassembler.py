"""Disassembler: binary words / Instruction objects back to assembly text."""

from __future__ import annotations

from collections.abc import Iterable

from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, OperandClass
from repro.isa.registers import fp_reg_name, int_reg_name

__all__ = ["format_instruction", "disassemble"]


def _reg(cls: OperandClass, index: int) -> str:
    return int_reg_name(index) if cls is OperandClass.INT else fp_reg_name(index)


def format_instruction(instr: Instruction) -> str:
    """Render one instruction in the assembler's input syntax."""
    spec = instr.spec
    m = spec.mnemonic
    fmt = spec.format
    if fmt is Format.N:
        return m
    if fmt is Format.R:
        ops = [_reg(spec.dst, instr.rd), _reg(spec.src1, instr.rs1)]
        if spec.src2 is not OperandClass.NONE:
            ops.append(_reg(spec.src2, instr.rs2))
        return f"{m} " + ", ".join(ops)
    if fmt is Format.I:
        if spec.is_load:
            return f"{m} {_reg(spec.dst, instr.rd)}, {instr.imm}({int_reg_name(instr.rs1)})"
        if m == "lui":
            return f"{m} {int_reg_name(instr.rd)}, {instr.imm}"
        return f"{m} {_reg(spec.dst, instr.rd)}, {_reg(spec.src1, instr.rs1)}, {instr.imm}"
    if fmt is Format.S:
        return f"{m} {_reg(spec.src2, instr.rs2)}, {instr.imm}({int_reg_name(instr.rs1)})"
    if fmt is Format.B:
        return (
            f"{m} {int_reg_name(instr.rs1)}, {int_reg_name(instr.rs2)}, {instr.imm}"
        )
    if fmt is Format.J:
        return f"{m} {int_reg_name(instr.rd)}, {instr.imm}"
    raise AssertionError(f"unhandled format {fmt}")  # pragma: no cover


def disassemble(words: Iterable[int]) -> list[str]:
    """Disassemble a sequence of 32-bit words into assembly lines."""
    return [format_instruction(decode(w)) for w in words]
