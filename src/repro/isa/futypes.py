"""The five functional-unit types of the architecture (Table 1 / Table 2).

Each instruction of the ISA is supported by exactly one type (a stated
assumption of the paper).  Each type has a 3-bit resource encoding used in
the resource-allocation vector and a slot cost: the number of contiguous
reconfigurable slots one unit of that type occupies.

Slot costs follow the paper (OCR reconstruction documented in DESIGN.md):
single-slot integer ALUs and load/store units, two-slot integer
multiply/divide units, three-slot floating-point units.
"""

from __future__ import annotations

import enum

__all__ = ["FUType", "FU_TYPES", "NUM_FU_TYPES"]


class FUType(enum.IntEnum):
    """Functional-unit type; the integer value is the Table 2 encoding."""

    INT_ALU = 0b001
    INT_MDU = 0b010
    LSU = 0b011
    FP_ALU = 0b100
    FP_MDU = 0b101

    @property
    def encoding(self) -> int:
        """Three-bit resource-type encoding (Table 2)."""
        return int(self)

    @property
    def slot_cost(self) -> int:
        """Number of reconfigurable slots one unit of this type occupies."""
        return _SLOT_COST[self]

    @property
    def bit_index(self) -> int:
        """Position of this type in one-hot requirement vectors (Fig. 2).

        The paper orders the decoder outputs INT_ALU (bit 0) .. FP_MDU
        (bit 4).
        """
        return _BIT_INDEX[self]

    @property
    def short_name(self) -> str:
        return _SHORT[self]


_SLOT_COST = {
    FUType.INT_ALU: 1,
    FUType.INT_MDU: 2,
    FUType.LSU: 1,
    FUType.FP_ALU: 3,
    FUType.FP_MDU: 3,
}

_BIT_INDEX = {
    FUType.INT_ALU: 0,
    FUType.INT_MDU: 1,
    FUType.LSU: 2,
    FUType.FP_ALU: 3,
    FUType.FP_MDU: 4,
}

_SHORT = {
    FUType.INT_ALU: "IALU",
    FUType.INT_MDU: "IMDU",
    FUType.LSU: "LSU",
    FUType.FP_ALU: "FPALU",
    FUType.FP_MDU: "FPMDU",
}

#: All five types in one-hot bit order (the canonical iteration order).
FU_TYPES: tuple[FUType, ...] = (
    FUType.INT_ALU,
    FUType.INT_MDU,
    FUType.LSU,
    FUType.FP_ALU,
    FUType.FP_MDU,
)

NUM_FU_TYPES = len(FU_TYPES)
