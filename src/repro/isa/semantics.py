"""Bit-accurate execution semantics for every opcode.

Integer registers hold 32-bit two's-complement values (stored unsigned);
floating-point registers hold IEEE-754 binary32 values (every FP result is
re-rounded through float32).  Division follows the RISC-V convention:
divide-by-zero yields all-ones / the dividend rather than trapping.

The functions here are pure: the execute stage combines them with the data
memory and store buffer.
"""

from __future__ import annotations

import math
import struct

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.utils.bitops import mask, to_signed, to_unsigned

__all__ = [
    "alu_result",
    "control_outcome",
    "effective_address",
    "store_bytes",
    "load_value",
    "access_size",
    "f32",
]

_U32 = mask(32)


def f32(value: float) -> float:
    """Round a Python float through IEEE-754 binary32.

    Values beyond the binary32 range overflow to infinity, as the hardware
    would (struct raises instead of rounding, so handle it here).
    """
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return math.copysign(math.inf, value)


def _sdiv(a: int, b: int) -> int:
    """RISC-V signed division (truncating, div-by-zero -> -1)."""
    if b == 0:
        return -1
    if a == -(1 << 31) and b == -1:  # overflow case wraps
        return a
    return int(a / b) if b else -1


def _srem(a: int, b: int) -> int:
    if b == 0:
        return a
    if a == -(1 << 31) and b == -1:
        return 0
    return a - _sdiv(a, b) * b


def alu_result(instr: Instruction, s1: int | float, s2: int | float) -> int | float:
    """Result of a non-memory, non-control instruction.

    Integer operands/results are unsigned 32-bit ints; FP are floats.
    """
    op = instr.opcode
    imm = instr.imm

    # ---- integer ALU ----
    if op in (Opcode.ADD, Opcode.ADDI):
        b = s2 if op is Opcode.ADD else imm
        return to_unsigned(s1 + b, 32)
    if op is Opcode.SUB:
        return to_unsigned(s1 - s2, 32)
    if op in (Opcode.AND, Opcode.ANDI):
        b = s2 if op is Opcode.AND else imm & 0x7FFF
        return (s1 & b) & _U32
    if op in (Opcode.OR, Opcode.ORI):
        b = s2 if op is Opcode.OR else imm & 0x7FFF
        return (s1 | b) & _U32
    if op in (Opcode.XOR, Opcode.XORI):
        b = s2 if op is Opcode.XOR else imm & 0x7FFF
        return (s1 ^ b) & _U32
    if op is Opcode.NOR:
        return ~(s1 | s2) & _U32
    if op in (Opcode.SLL, Opcode.SLLI):
        amt = (s2 if op is Opcode.SLL else imm) & 31
        return to_unsigned(s1 << amt, 32)
    if op in (Opcode.SRL, Opcode.SRLI):
        amt = (s2 if op is Opcode.SRL else imm) & 31
        return (s1 & _U32) >> amt
    if op in (Opcode.SRA, Opcode.SRAI):
        amt = (s2 if op is Opcode.SRA else imm) & 31
        return to_unsigned(to_signed(s1, 32) >> amt, 32)
    if op in (Opcode.SLT, Opcode.SLTI):
        b = s2 if op is Opcode.SLT else imm
        bs = to_signed(b, 32) if op is Opcode.SLT else b
        return int(to_signed(s1, 32) < bs)
    if op is Opcode.SLTU:
        return int((s1 & _U32) < (s2 & _U32))
    if op is Opcode.LUI:
        # the immediate field is stored sign-extended; lui places its 15
        # raw bits at [29:15]
        return ((imm & 0x7FFF) << 15) & _U32

    # ---- floating-point ----
    if op is Opcode.FADD:
        return f32(s1 + s2)
    if op is Opcode.FSUB:
        return f32(s1 - s2)
    if op is Opcode.FMUL:
        return f32(s1 * s2)
    if op is Opcode.FDIV:
        if s2 == 0.0:
            if s1 == 0.0 or math.isnan(s1):
                return math.nan
            sign = math.copysign(1.0, s1) * math.copysign(1.0, s2)
            return math.copysign(math.inf, sign)
        return f32(s1 / s2)
    if op is Opcode.FSQRT:
        return f32(math.sqrt(s1)) if s1 >= 0.0 else math.nan
    if op is Opcode.FMIN:
        return f32(min(s1, s2))
    if op is Opcode.FMAX:
        return f32(max(s1, s2))
    if op is Opcode.FABS:
        return f32(abs(s1))
    if op is Opcode.FNEG:
        return f32(-s1)
    if op is Opcode.FMOV:
        return f32(s1)
    if op is Opcode.FEQ:
        return int(s1 == s2)
    if op is Opcode.FLT:
        return int(s1 < s2)
    if op is Opcode.FLE:
        return int(s1 <= s2)
    if op is Opcode.FCVTWS:
        clamped = max(-(1 << 31), min((1 << 31) - 1, int(s1) if math.isfinite(s1) else 0))
        return to_unsigned(clamped, 32)
    if op is Opcode.FCVTSW:
        return f32(float(to_signed(s1, 32)))

    # ---- integer multiply/divide ----
    a_s, b_s = to_signed(s1, 32), to_signed(s2 if s2 is not None else 0, 32)
    a_u, b_u = s1 & _U32, (s2 if s2 is not None else 0) & _U32
    if op is Opcode.MUL:
        return to_unsigned(a_s * b_s, 32)
    if op is Opcode.MULH:
        return to_unsigned((a_s * b_s) >> 32, 32)
    if op is Opcode.MULHU:
        return ((a_u * b_u) >> 32) & _U32
    if op is Opcode.DIV:
        return to_unsigned(_sdiv(a_s, b_s), 32)
    if op is Opcode.DIVU:
        return _U32 if b_u == 0 else (a_u // b_u) & _U32
    if op is Opcode.REM:
        return to_unsigned(_srem(a_s, b_s), 32)
    if op is Opcode.REMU:
        return a_u if b_u == 0 else (a_u % b_u) & _U32

    raise ValueError(f"alu_result does not handle {instr.mnemonic}")


def control_outcome(
    instr: Instruction, pc: int, s1: int = 0, s2: int = 0
) -> tuple[bool, int, int | None]:
    """Resolve a control instruction.

    Returns ``(taken, target_pc, link_value)``; ``link_value`` is the value
    written to ``rd`` for jumps (the return address ``pc + 1``), else None.
    For a not-taken branch ``target_pc`` is the fall-through ``pc + 1``.
    """
    op = instr.opcode
    if op is Opcode.JAL:
        return True, pc + instr.imm, to_unsigned(pc + 1, 32)
    if op is Opcode.JALR:
        return True, to_unsigned(s1 + instr.imm, 32), to_unsigned(pc + 1, 32)
    if op is Opcode.HALT:
        return False, pc + 1, None

    a_s, b_s = to_signed(s1, 32), to_signed(s2, 32)
    a_u, b_u = s1 & _U32, s2 & _U32
    taken = {
        Opcode.BEQ: a_u == b_u,
        Opcode.BNE: a_u != b_u,
        Opcode.BLT: a_s < b_s,
        Opcode.BGE: a_s >= b_s,
        Opcode.BLTU: a_u < b_u,
        Opcode.BGEU: a_u >= b_u,
    }.get(op)
    if taken is None:
        raise ValueError(f"control_outcome does not handle {instr.mnemonic}")
    return taken, (pc + instr.imm) if taken else (pc + 1), None


def effective_address(instr: Instruction, base: int) -> int:
    """Byte address accessed by a load or store."""
    return to_unsigned(base + instr.imm, 32)


def access_size(instr: Instruction) -> int:
    """Access width in bytes of a load/store."""
    m = instr.mnemonic
    if m in ("lw", "sw", "flw", "fsw"):
        return 4
    if m in ("lh", "lhu", "sh"):
        return 2
    return 1


def store_bytes(instr: Instruction, value: int | float) -> bytes:
    """Bytes a store writes to memory (little-endian)."""
    m = instr.mnemonic
    if m == "sw":
        return struct.pack("<I", value & _U32)
    if m == "sh":
        return struct.pack("<H", value & 0xFFFF)
    if m == "sb":
        return struct.pack("<B", value & 0xFF)
    if m == "fsw":
        return struct.pack("<f", f32(value))
    raise ValueError(f"not a store: {instr.mnemonic}")


def load_value(instr: Instruction, raw: bytes) -> int | float:
    """Register value produced by a load from its raw memory bytes."""
    m = instr.mnemonic
    if m == "lw":
        return struct.unpack("<I", raw)[0]
    if m == "lh":
        return to_unsigned(struct.unpack("<h", raw)[0], 32)
    if m == "lhu":
        return struct.unpack("<H", raw)[0]
    if m == "lb":
        return to_unsigned(struct.unpack("<b", raw)[0], 32)
    if m == "lbu":
        return struct.unpack("<B", raw)[0]
    if m == "flw":
        return struct.unpack("<f", raw)[0]
    raise ValueError(f"not a load: {instr.mnemonic}")
