"""Register-file conventions: 32 integer + 32 floating-point registers.

Integer register ``x0`` is hard-wired to zero (writes are discarded), the
usual RISC convention; the assembler also accepts the ABI aliases ``zero``,
``ra`` (x1) and ``sp`` (x2).
"""

from __future__ import annotations

__all__ = [
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "ZERO_REG",
    "int_reg_name",
    "fp_reg_name",
    "parse_register",
]

NUM_INT_REGS = 32
NUM_FP_REGS = 32
ZERO_REG = 0

_ALIASES = {"zero": 0, "ra": 1, "sp": 2}


def int_reg_name(index: int) -> str:
    """Canonical name of integer register ``index`` (``x0`` .. ``x31``)."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return f"x{index}"


def fp_reg_name(index: int) -> str:
    """Canonical name of floating-point register ``index`` (``f0`` .. ``f31``)."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return f"f{index}"


def parse_register(token: str) -> tuple[str, int]:
    """Parse a register token into ``("int"|"fp", index)``.

    Accepts ``x<N>``, ``f<N>`` and the integer ABI aliases.
    """
    token = token.strip().lower()
    if token in _ALIASES:
        return "int", _ALIASES[token]
    if len(token) >= 2 and token[0] in "xf" and token[1:].isdigit():
        index = int(token[1:])
        limit = NUM_INT_REGS if token[0] == "x" else NUM_FP_REGS
        if 0 <= index < limit:
            return ("int" if token[0] == "x" else "fp"), index
    raise ValueError(f"not a register: {token!r}")
