"""Two-pass assembler for the repro ISA.

Syntax (one instruction or directive per line; ``#`` and ``;`` start
comments)::

    .data
    vec:    .word 1, 2, 3, 4
    scale:  .float 0.5
    buf:    .space 64
    .text
    main:   la   x5, vec
            lw   x6, 0(x5)
            addi x6, x6, 1
            beq  x6, x0, done
            jal  x0, main
    done:   halt

Supported pseudo-instructions: ``nop``, ``mv``, ``li``, ``la``, ``j``,
``call``, ``ret``, ``bgt``, ``ble``, ``bgtu``, ``bleu``, ``not``, ``neg``.
Branch/jump targets may be labels or literal word offsets.
"""

from __future__ import annotations

import re
import struct

from repro.errors import AssemblerError
from repro.isa.encoding import imm_range
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode, OperandClass, spec_of
from repro.isa.program import Program
from repro.isa.registers import parse_register

__all__ = ["assemble"]

_PSEUDOS = {
    "nop", "mv", "li", "la", "j", "call", "ret",
    "bgt", "ble", "bgtu", "bleu", "not", "neg",
}

_LI_MAX = (1 << 30) - 1


def _tokenize_operands(text: str) -> list[str]:
    text = text.strip()
    if not text:
        return []
    return [t.strip() for t in text.split(",")]


def _parse_int(token: str, line: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"not an integer: {token!r}", line) from None


def _parse_mem_operand(token: str, line: int) -> tuple[int, str]:
    """Parse ``imm(base)`` -> (imm-or-label-as-str handled upstream, base reg)."""
    if "(" not in token or not token.endswith(")"):
        raise AssemblerError(f"expected imm(base) operand, got {token!r}", line)
    imm_part, base_part = token[:-1].split("(", 1)
    cls, idx = parse_register(base_part)
    if cls != "int":
        raise AssemblerError(f"memory base must be an integer register: {token!r}", line)
    return idx, imm_part.strip() or "0"


class _Assembler:
    def __init__(self, source: str) -> None:
        self.source = source
        self.program = Program(source=source)
        # (mnemonic, operand_tokens, line_no, word_index) collected in pass 1
        self._pending: list[tuple[str, list[str], int]] = []
        self._section = "text"
        self._data = bytearray()

    # ------------------------------------------------------------- pass 1
    def first_pass(self) -> None:
        word_index = 0
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if not line:
                continue
            while ":" in line.split()[0] if line else False:
                label, _, line = line.partition(":")
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblerError(f"bad label {label!r}", line_no)
                self._define_label(label, word_index, line_no)
                line = line.strip()
                if not line:
                    break
            if not line:
                continue
            if line.startswith("."):
                self._directive(line, line_no)
                continue
            if self._section != "text":
                raise AssemblerError("instructions are only allowed in .text", line_no)
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _tokenize_operands(parts[1]) if len(parts) > 1 else []
            size = self._expansion_size(mnemonic, operands, line_no)
            self._pending.append((mnemonic, operands, line_no))
            word_index += size

    def _define_label(self, label: str, word_index: int, line_no: int) -> None:
        table = self.program.labels if self._section == "text" else self.program.data_labels
        if label in self.program.labels or label in self.program.data_labels:
            raise AssemblerError(f"duplicate label {label!r}", line_no)
        table[label] = word_index if self._section == "text" else len(self._data)

    def _directive(self, line: str, line_no: int) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        arg = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self._section = "text"
        elif name == ".data":
            self._section = "data"
        elif name == ".word":
            self._need_data(line_no)
            for tok in _tokenize_operands(arg):
                value = _parse_int(tok, line_no)
                self._data += struct.pack("<I", value & 0xFFFFFFFF)
        elif name == ".float":
            self._need_data(line_no)
            for tok in _tokenize_operands(arg):
                try:
                    value = float(tok)
                except ValueError:
                    raise AssemblerError(f"not a float: {tok!r}", line_no) from None
                self._data += struct.pack("<f", value)
        elif name == ".space":
            self._need_data(line_no)
            self._data += bytes(_parse_int(arg.strip(), line_no))
        elif name == ".align":
            self._need_data(line_no)
            boundary = _parse_int(arg.strip(), line_no)
            if boundary <= 0:
                raise AssemblerError(".align boundary must be positive", line_no)
            while len(self._data) % boundary:
                self._data.append(0)
        else:
            raise AssemblerError(f"unknown directive {name!r}", line_no)

    def _need_data(self, line_no: int) -> None:
        if self._section != "data":
            raise AssemblerError("data directive outside .data section", line_no)

    def _expansion_size(self, mnemonic: str, operands: list[str], line_no: int) -> int:
        if mnemonic == "li":
            if len(operands) != 2:
                raise AssemblerError("li takes rd, imm", line_no)
            value = _parse_int(operands[1], line_no)
            lo, hi = imm_range(Format.I)
            return 1 if lo <= value <= hi else 2
        if mnemonic == "la":
            # Address may not be known yet; the data segment fits in the
            # 15-bit immediate for every workload we ship, so reserve 1 word
            # and verify in pass 2.
            return 1
        if mnemonic in _PSEUDOS:
            return 1
        try:
            spec_of(mnemonic)
        except KeyError:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no) from None
        return 1

    # ------------------------------------------------------------- pass 2
    def second_pass(self) -> None:
        for mnemonic, operands, line_no in self._pending:
            for instr in self._expand(mnemonic, operands, line_no):
                self.program.instructions.append(instr)
        self.program.data = self._data

    def _resolve_value(self, token: str, line_no: int) -> int:
        """Integer literal, label (data byte address / text word index), or
        label arithmetic of the form ``label+imm`` / ``label-imm``."""
        token = token.strip()
        if token in self.program.data_labels:
            return self.program.data_labels[token]
        if token in self.program.labels:
            return self.program.labels[token]
        m = re.fullmatch(r"([A-Za-z_]\w*)\s*([+-])\s*(\w+)", token)
        if m:
            base_tok, sign, off_tok = m.groups()
            base = self._resolve_value(base_tok, line_no)
            offset = _parse_int(off_tok, line_no)
            return base + offset if sign == "+" else base - offset
        return _parse_int(token, line_no)

    def _branch_offset(self, token: str, pc: int, line_no: int) -> int:
        if token in self.program.labels:
            return self.program.labels[token] - pc
        return _parse_int(token, line_no)

    def _reg(self, token: str, want: OperandClass, line_no: int) -> int:
        try:
            cls, idx = parse_register(token)
        except ValueError as exc:
            raise AssemblerError(str(exc), line_no) from None
        expected = "int" if want is OperandClass.INT else "fp"
        if cls != expected:
            raise AssemblerError(
                f"expected {expected} register, got {token!r}", line_no
            )
        return idx

    def _expand(self, mnemonic: str, ops: list[str], line_no: int) -> list[Instruction]:
        pc = len(self.program.instructions)
        if mnemonic in _PSEUDOS:
            return self._expand_pseudo(mnemonic, ops, pc, line_no)
        opcode = Opcode[mnemonic.upper()]
        spec = spec_of(opcode)
        fmt = spec.format
        try:
            if fmt is Format.N:
                self._arity(ops, 0, mnemonic, line_no)
                return [Instruction(opcode)]
            if fmt is Format.R:
                n = 2 if spec.src2 is OperandClass.NONE else 3
                self._arity(ops, n, mnemonic, line_no)
                rd = self._reg(ops[0], spec.dst, line_no)
                rs1 = self._reg(ops[1], spec.src1, line_no)
                rs2 = self._reg(ops[2], spec.src2, line_no) if n == 3 else 0
                return [Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2)]
            if fmt is Format.I:
                if spec.is_load:
                    self._arity(ops, 2, mnemonic, line_no)
                    rd = self._reg(ops[0], spec.dst, line_no)
                    rs1, imm_tok = _parse_mem_operand(ops[1], line_no)
                    return [Instruction(opcode, rd=rd, rs1=rs1,
                                        imm=self._resolve_value(imm_tok, line_no))]
                if mnemonic == "lui":
                    self._arity(ops, 2, mnemonic, line_no)
                    rd = self._reg(ops[0], spec.dst, line_no)
                    return [Instruction(opcode, rd=rd, imm=_parse_int(ops[1], line_no))]
                self._arity(ops, 3, mnemonic, line_no)
                rd = self._reg(ops[0], spec.dst, line_no)
                rs1 = self._reg(ops[1], spec.src1, line_no)
                return [Instruction(opcode, rd=rd, rs1=rs1,
                                    imm=self._resolve_value(ops[2], line_no))]
            if fmt is Format.S:
                self._arity(ops, 2, mnemonic, line_no)
                rs2 = self._reg(ops[0], spec.src2, line_no)
                rs1, imm_tok = _parse_mem_operand(ops[1], line_no)
                return [Instruction(opcode, rs1=rs1, rs2=rs2,
                                    imm=self._resolve_value(imm_tok, line_no))]
            if fmt is Format.B:
                self._arity(ops, 3, mnemonic, line_no)
                rs1 = self._reg(ops[0], OperandClass.INT, line_no)
                rs2 = self._reg(ops[1], OperandClass.INT, line_no)
                return [Instruction(opcode, rs1=rs1, rs2=rs2,
                                    imm=self._branch_offset(ops[2], pc, line_no))]
            if fmt is Format.J:
                self._arity(ops, 2, mnemonic, line_no)
                rd = self._reg(ops[0], OperandClass.INT, line_no)
                return [Instruction(opcode, rd=rd,
                                    imm=self._branch_offset(ops[1], pc, line_no))]
        except ValueError as exc:
            raise AssemblerError(str(exc), line_no) from None
        raise AssemblerError(f"unhandled format for {mnemonic!r}", line_no)

    def _expand_pseudo(
        self, mnemonic: str, ops: list[str], pc: int, line_no: int
    ) -> list[Instruction]:
        I = OperandClass.INT
        if mnemonic == "nop":
            self._arity(ops, 0, mnemonic, line_no)
            return [Instruction(Opcode.ADDI)]
        if mnemonic == "mv":
            self._arity(ops, 2, mnemonic, line_no)
            return [Instruction(Opcode.ADDI, rd=self._reg(ops[0], I, line_no),
                                rs1=self._reg(ops[1], I, line_no))]
        if mnemonic == "not":
            self._arity(ops, 2, mnemonic, line_no)
            return [Instruction(Opcode.NOR, rd=self._reg(ops[0], I, line_no),
                                rs1=self._reg(ops[1], I, line_no),
                                rs2=self._reg(ops[1], I, line_no))]
        if mnemonic == "neg":
            self._arity(ops, 2, mnemonic, line_no)
            return [Instruction(Opcode.SUB, rd=self._reg(ops[0], I, line_no),
                                rs1=0, rs2=self._reg(ops[1], I, line_no))]
        if mnemonic in ("li", "la"):
            self._arity(ops, 2, mnemonic, line_no)
            rd = self._reg(ops[0], I, line_no)
            value = self._resolve_value(ops[1], line_no)
            lo, hi = imm_range(Format.I)
            if lo <= value <= hi:
                return [Instruction(Opcode.ADDI, rd=rd, imm=value)]
            if mnemonic == "la":
                raise AssemblerError(
                    f"la address {value} exceeds the 15-bit immediate", line_no
                )
            if not 0 <= value <= _LI_MAX:
                raise AssemblerError(
                    f"li constant {value} outside supported range "
                    f"[{lo}, {_LI_MAX}]", line_no
                )
            # the low chunk is encoded as a signed 15-bit field; ori's
            # semantics re-mask it to 15 unsigned bits, so values with bit
            # 14 set round-trip correctly through the sign-extended form
            from repro.utils.bitops import sign_extend

            return [
                Instruction(Opcode.LUI, rd=rd,
                            imm=sign_extend((value >> 15) & 0x7FFF, 15)),
                Instruction(Opcode.ORI, rd=rd, rs1=rd,
                            imm=sign_extend(value & 0x7FFF, 15)),
            ]
        if mnemonic == "j":
            self._arity(ops, 1, mnemonic, line_no)
            return [Instruction(Opcode.JAL, rd=0,
                                imm=self._branch_offset(ops[0], pc, line_no))]
        if mnemonic == "call":
            self._arity(ops, 1, mnemonic, line_no)
            return [Instruction(Opcode.JAL, rd=1,
                                imm=self._branch_offset(ops[0], pc, line_no))]
        if mnemonic == "ret":
            self._arity(ops, 0, mnemonic, line_no)
            return [Instruction(Opcode.JALR, rd=0, rs1=1)]
        if mnemonic in ("bgt", "ble", "bgtu", "bleu"):
            self._arity(ops, 3, mnemonic, line_no)
            swapped = {"bgt": Opcode.BLT, "ble": Opcode.BGE,
                       "bgtu": Opcode.BLTU, "bleu": Opcode.BGEU}[mnemonic]
            return [Instruction(swapped, rs1=self._reg(ops[1], I, line_no),
                                rs2=self._reg(ops[0], I, line_no),
                                imm=self._branch_offset(ops[2], pc, line_no))]
        raise AssemblerError(f"unknown pseudo-instruction {mnemonic!r}", line_no)

    @staticmethod
    def _arity(ops: list[str], n: int, mnemonic: str, line_no: int) -> None:
        if len(ops) != n:
            raise AssemblerError(
                f"{mnemonic} takes {n} operand(s), got {len(ops)}", line_no
            )


def assemble(source: str) -> Program:
    """Assemble source text into a :class:`~repro.isa.program.Program`."""
    asm = _Assembler(source)
    asm.first_pass()
    asm.second_pass()
    return asm.program
