"""Generated ISA reference documentation.

:func:`isa_reference` renders the complete opcode table — mnemonic,
opcode number, encoding format, functional-unit type, latency and operand
classes — straight from the opcode specs, so the documentation can never
drift from the implementation.  ``docs/isa.md`` embeds its output and the
docs test regenerates and compares.
"""

from __future__ import annotations

from repro.isa.encoding import imm_range
from repro.isa.futypes import FU_TYPES
from repro.isa.opcodes import ALL_SPECS, Format, OperandClass

__all__ = ["isa_reference", "format_reference"]

_CLASS = {OperandClass.NONE: "-", OperandClass.INT: "int", OperandClass.FP: "fp"}


def isa_reference() -> str:
    """The full opcode table as fixed-width text, grouped by unit type."""
    lines = []
    header = (
        f"{'mnemonic':10s} {'op#':>5s} {'fmt':4s} {'lat':>3s} "
        f"{'dst':4s} {'src1':5s} {'src2':5s}"
    )
    for t in FU_TYPES:
        specs = [s for s in ALL_SPECS if s.fu_type is t]
        lines.append(f"--- {t.name} ({t.short_name}): {len(specs)} opcodes, "
                     f"{t.slot_cost} slot(s) per unit ---")
        lines.append(header)
        for s in specs:
            lines.append(
                f"{s.mnemonic:10s} {s.number:#05x} {s.format.value:4s} "
                f"{s.latency:3d} {_CLASS[s.dst]:4s} {_CLASS[s.src1]:5s} "
                f"{_CLASS[s.src2]:5s}"
            )
        lines.append("")
    return "\n".join(lines)


def format_reference() -> str:
    """The binary-encoding format table (field layout + immediate ranges)."""
    layouts = {
        Format.R: "opcode[31:25] rd[24:20] rs1[19:15] rs2[14:10] 0[9:0]",
        Format.I: "opcode[31:25] rd[24:20] rs1[19:15] imm15[14:0]",
        Format.S: "opcode[31:25] imm[14:10]@[24:20] rs1[19:15] rs2[14:10] imm[9:0]",
        Format.B: "opcode[31:25] imm[14:10]@[24:20] rs1[19:15] rs2[14:10] imm[9:0]",
        Format.J: "opcode[31:25] rd[24:20] imm20[19:0]",
        Format.N: "opcode[31:25] 0[24:0]",
    }
    lines = [f"{'format':7s} {'imm range':22s} layout"]
    for fmt, layout in layouts.items():
        lo, hi = imm_range(fmt)
        rng = f"[{lo}, {hi}]" if hi > lo else "-"
        lines.append(f"{fmt.value:7s} {rng:22s} {layout}")
    return "\n".join(lines)
