"""The :class:`Program` container: code, labels and an initial data image."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import encode
from repro.isa.instruction import Instruction

__all__ = ["Program"]


@dataclass
class Program:
    """An assembled program.

    Attributes
    ----------
    instructions:
        The text segment, one :class:`Instruction` per word; instruction
        addresses are word indices (the PC counts words).
    labels:
        Text labels -> instruction word index.
    data:
        Initial image of the data segment (byte 0 = data address 0).
    data_labels:
        Data labels -> byte address within the data segment.
    source:
        Original assembly source, if the program came from the assembler.
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: bytearray = field(default_factory=bytearray)
    data_labels: dict[str, int] = field(default_factory=dict)
    source: str | None = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def to_binary(self) -> list[int]:
        """Encode the text segment to 32-bit words (the 'legacy binary')."""
        return [encode(i) for i in self.instructions]

    def entry(self, label: str = "main") -> int:
        """Start PC: the given label if defined, else word 0."""
        return self.labels.get(label, 0)

    def fu_type_histogram(self) -> dict:
        """Instruction count per functional-unit type (static mix)."""
        hist: dict = {}
        for instr in self.instructions:
            hist[instr.fu_type] = hist.get(instr.fu_type, 0) + 1
        return hist
