"""32-bit binary instruction encoding and decoding.

Layout (bit 31 = MSB):

====== ============ ============ ============ =============
format [31:25]      [24:20]      [19:15]      [14:0]
====== ============ ============ ============ =============
R      opcode       rd           rs1          rs2 [14:10], 0
I      opcode       rd           rs1          imm15 (signed)
S/B    opcode       imm[14:10]   rs1          rs2 [14:10], imm[9:0]
J      opcode       rd           imm20 [19:0] (signed)
N      opcode       0            0            0
====== ============ ============ ============ =============

Branch and jump immediates are PC-relative in *instruction words*.
Round-tripping ``decode(encode(i)) == i`` holds for every legal instruction
and is property-tested.
"""

from __future__ import annotations

from repro.errors import DisassemblerError, EncodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode, spec_of
from repro.utils.bitops import bits, mask, sign_extend, to_unsigned

__all__ = ["encode", "decode", "WORD_BITS", "imm_range"]

WORD_BITS = 32

_IMM15_MIN, _IMM15_MAX = -(1 << 14), (1 << 14) - 1
_IMM20_MIN, _IMM20_MAX = -(1 << 19), (1 << 19) - 1


def imm_range(fmt: Format) -> tuple[int, int]:
    """Inclusive immediate range representable by ``fmt``."""
    if fmt is Format.J:
        return _IMM20_MIN, _IMM20_MAX
    if fmt in (Format.I, Format.S, Format.B):
        return _IMM15_MIN, _IMM15_MAX
    return 0, 0


def encode(instr: Instruction) -> int:
    """Encode an :class:`Instruction` into its 32-bit binary word."""
    spec = instr.spec
    fmt = spec.format
    word = int(instr.opcode) << 25

    lo, hi = imm_range(fmt)
    if not lo <= instr.imm <= hi:
        raise EncodingError(
            f"immediate {instr.imm} out of range [{lo}, {hi}] for {spec.mnemonic}"
        )

    if fmt is Format.R:
        word |= instr.rd << 20 | instr.rs1 << 15 | instr.rs2 << 10
    elif fmt is Format.I:
        word |= instr.rd << 20 | instr.rs1 << 15 | to_unsigned(instr.imm, 15)
    elif fmt in (Format.S, Format.B):
        imm = to_unsigned(instr.imm, 15)
        word |= (
            bits(imm, 14, 10) << 20
            | instr.rs1 << 15
            | instr.rs2 << 10
            | bits(imm, 9, 0)
        )
    elif fmt is Format.J:
        word |= instr.rd << 20 | to_unsigned(instr.imm, 20)
    elif fmt is Format.N:
        pass
    else:  # pragma: no cover - exhaustive over Format
        raise EncodingError(f"unhandled format {fmt}")
    return word


def decode(word: int) -> Instruction:
    """Decode a 32-bit binary word into an :class:`Instruction`."""
    if word < 0 or word > mask(WORD_BITS):
        raise DisassemblerError(f"not a 32-bit word: {word:#x}")
    opnum = bits(word, 31, 25)
    try:
        opcode = Opcode(opnum)
    except ValueError:
        raise DisassemblerError(f"unknown opcode {opnum:#04x} in word {word:#010x}") from None
    fmt = spec_of(opcode).format

    if fmt is Format.R:
        return Instruction(
            opcode, rd=bits(word, 24, 20), rs1=bits(word, 19, 15), rs2=bits(word, 14, 10)
        )
    if fmt is Format.I:
        return Instruction(
            opcode,
            rd=bits(word, 24, 20),
            rs1=bits(word, 19, 15),
            imm=sign_extend(bits(word, 14, 0), 15),
        )
    if fmt in (Format.S, Format.B):
        imm = (bits(word, 24, 20) << 10) | bits(word, 9, 0)
        return Instruction(
            opcode,
            rs1=bits(word, 19, 15),
            rs2=bits(word, 14, 10),
            imm=sign_extend(imm, 15),
        )
    if fmt is Format.J:
        return Instruction(opcode, rd=bits(word, 24, 20), imm=sign_extend(bits(word, 19, 0), 20))
    return Instruction(opcode)
