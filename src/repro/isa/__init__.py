"""The RISC instruction-set architecture executed by the processor model.

The paper's motivation is binary ("legacy") compatibility: the processor
executes ordinary machine code while its functional-unit mix reconfigures
underneath.  This package therefore defines a complete little ISA — opcodes
mapped to the five functional-unit types, a 32-bit binary encoding, an
assembler and disassembler, and bit-accurate execution semantics — so that
workloads are real programs, not abstract instruction streams.
"""

from repro.isa.futypes import FUType, FU_TYPES
from repro.isa.opcodes import Format, Opcode, OperandClass, spec_of
from repro.isa.instruction import Instruction
from repro.isa.encoding import decode, encode
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.program import Program
from repro.isa.registers import (
    NUM_FP_REGS,
    NUM_INT_REGS,
    fp_reg_name,
    int_reg_name,
    parse_register,
)

__all__ = [
    "FUType",
    "FU_TYPES",
    "Opcode",
    "Format",
    "OperandClass",
    "spec_of",
    "Instruction",
    "encode",
    "decode",
    "assemble",
    "disassemble",
    "Program",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "int_reg_name",
    "fp_reg_name",
    "parse_register",
]
