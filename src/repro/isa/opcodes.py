"""Opcode table: every instruction, its format, unit type and latency.

The ISA is a small RISC (register-register, load/store) chosen so that
each opcode is served by exactly one of the five functional-unit types, as
the paper assumes.  Branches and jumps execute on the integer ALU.

Latencies (cycles in the execute stage) follow DESIGN.md §4 and are the
values the wake-up array's count-down timers are loaded with.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.futypes import FUType

__all__ = ["Format", "OperandClass", "Opcode", "OpcodeSpec", "spec_of", "ALL_SPECS"]


class Format(enum.Enum):
    """Binary encoding format (see :mod:`repro.isa.encoding`)."""

    R = "R"  # rd, rs1, rs2
    I = "I"  # rd, rs1, imm15      (also loads: rd, imm(rs1))
    S = "S"  # rs1, rs2, imm15     (stores: rs2, imm(rs1))
    B = "B"  # rs1, rs2, imm15     (branches, imm in words)
    J = "J"  # rd, imm20           (jal, imm in words)
    N = "N"  # no operands         (halt)


class OperandClass(enum.Enum):
    """Register class of an operand slot."""

    NONE = "none"
    INT = "int"
    FP = "fp"


@dataclass(frozen=True)
class OpcodeSpec:
    """Static properties of one opcode."""

    number: int
    mnemonic: str
    fu_type: FUType
    format: Format
    latency: int
    dst: OperandClass
    src1: OperandClass
    src2: OperandClass

    @property
    def is_branch(self) -> bool:
        return self.format is Format.B

    @property
    def is_jump(self) -> bool:
        return self.mnemonic in ("jal", "jalr")

    @property
    def is_store(self) -> bool:
        return self.format is Format.S

    @property
    def is_load(self) -> bool:
        return self.fu_type is FUType.LSU and not self.is_store

    @property
    def is_halt(self) -> bool:
        return self.mnemonic == "halt"


_N = OperandClass.NONE
_I = OperandClass.INT
_F = OperandClass.FP

# number, mnemonic, fu_type, format, latency, dst, src1, src2
_TABLE: list[tuple] = [
    # -- integer ALU ------------------------------------------------- lat 1
    (0x01, "add", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x02, "sub", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x03, "and", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x04, "or", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x05, "xor", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x06, "nor", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x07, "sll", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x08, "srl", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x09, "sra", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x0A, "slt", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x0B, "sltu", FUType.INT_ALU, Format.R, 1, _I, _I, _I),
    (0x0C, "addi", FUType.INT_ALU, Format.I, 1, _I, _I, _N),
    (0x0D, "andi", FUType.INT_ALU, Format.I, 1, _I, _I, _N),
    (0x0E, "ori", FUType.INT_ALU, Format.I, 1, _I, _I, _N),
    (0x0F, "xori", FUType.INT_ALU, Format.I, 1, _I, _I, _N),
    (0x10, "slti", FUType.INT_ALU, Format.I, 1, _I, _I, _N),
    (0x11, "slli", FUType.INT_ALU, Format.I, 1, _I, _I, _N),
    (0x12, "srli", FUType.INT_ALU, Format.I, 1, _I, _I, _N),
    (0x13, "srai", FUType.INT_ALU, Format.I, 1, _I, _I, _N),
    (0x14, "lui", FUType.INT_ALU, Format.I, 1, _I, _N, _N),
    # -- control flow (executes on the integer ALU) ------------------ lat 1
    (0x18, "beq", FUType.INT_ALU, Format.B, 1, _N, _I, _I),
    (0x19, "bne", FUType.INT_ALU, Format.B, 1, _N, _I, _I),
    (0x1A, "blt", FUType.INT_ALU, Format.B, 1, _N, _I, _I),
    (0x1B, "bge", FUType.INT_ALU, Format.B, 1, _N, _I, _I),
    (0x1C, "bltu", FUType.INT_ALU, Format.B, 1, _N, _I, _I),
    (0x1D, "bgeu", FUType.INT_ALU, Format.B, 1, _N, _I, _I),
    (0x1E, "jal", FUType.INT_ALU, Format.J, 1, _I, _N, _N),
    (0x1F, "jalr", FUType.INT_ALU, Format.I, 1, _I, _I, _N),
    (0x20, "halt", FUType.INT_ALU, Format.N, 1, _N, _N, _N),
    # -- integer multiply/divide -------------------------------------
    (0x28, "mul", FUType.INT_MDU, Format.R, 4, _I, _I, _I),
    (0x29, "mulh", FUType.INT_MDU, Format.R, 4, _I, _I, _I),
    (0x2A, "mulhu", FUType.INT_MDU, Format.R, 4, _I, _I, _I),
    (0x2B, "div", FUType.INT_MDU, Format.R, 12, _I, _I, _I),
    (0x2C, "divu", FUType.INT_MDU, Format.R, 12, _I, _I, _I),
    (0x2D, "rem", FUType.INT_MDU, Format.R, 12, _I, _I, _I),
    (0x2E, "remu", FUType.INT_MDU, Format.R, 12, _I, _I, _I),
    # -- load/store --------------------------------------------------- lat 2
    (0x30, "lw", FUType.LSU, Format.I, 2, _I, _I, _N),
    (0x31, "lb", FUType.LSU, Format.I, 2, _I, _I, _N),
    (0x32, "lbu", FUType.LSU, Format.I, 2, _I, _I, _N),
    (0x33, "lh", FUType.LSU, Format.I, 2, _I, _I, _N),
    (0x34, "lhu", FUType.LSU, Format.I, 2, _I, _I, _N),
    (0x35, "sw", FUType.LSU, Format.S, 2, _N, _I, _I),
    (0x36, "sb", FUType.LSU, Format.S, 2, _N, _I, _I),
    (0x37, "sh", FUType.LSU, Format.S, 2, _N, _I, _I),
    (0x38, "flw", FUType.LSU, Format.I, 2, _F, _I, _N),
    (0x39, "fsw", FUType.LSU, Format.S, 2, _N, _I, _F),
    # -- floating-point ALU ------------------------------------------- lat 3
    (0x40, "fadd", FUType.FP_ALU, Format.R, 3, _F, _F, _F),
    (0x41, "fsub", FUType.FP_ALU, Format.R, 3, _F, _F, _F),
    (0x42, "fmin", FUType.FP_ALU, Format.R, 3, _F, _F, _F),
    (0x43, "fmax", FUType.FP_ALU, Format.R, 3, _F, _F, _F),
    (0x44, "fabs", FUType.FP_ALU, Format.R, 3, _F, _F, _N),
    (0x45, "fneg", FUType.FP_ALU, Format.R, 3, _F, _F, _N),
    (0x46, "fmov", FUType.FP_ALU, Format.R, 3, _F, _F, _N),
    (0x47, "feq", FUType.FP_ALU, Format.R, 3, _I, _F, _F),
    (0x48, "flt", FUType.FP_ALU, Format.R, 3, _I, _F, _F),
    (0x49, "fle", FUType.FP_ALU, Format.R, 3, _I, _F, _F),
    (0x4A, "fcvtws", FUType.FP_ALU, Format.R, 3, _I, _F, _N),
    (0x4B, "fcvtsw", FUType.FP_ALU, Format.R, 3, _F, _I, _N),
    # -- floating-point multiply/divide --------------------------------
    (0x50, "fmul", FUType.FP_MDU, Format.R, 5, _F, _F, _F),
    (0x51, "fdiv", FUType.FP_MDU, Format.R, 16, _F, _F, _F),
    (0x52, "fsqrt", FUType.FP_MDU, Format.R, 20, _F, _F, _N),
]

Opcode = enum.Enum(  # type: ignore[misc]
    "Opcode", {row[1].upper(): row[0] for row in _TABLE}, type=enum.IntEnum
)
Opcode.__doc__ = "Every opcode of the ISA; the value is the 7-bit opcode number."

_SPECS: dict[Opcode, OpcodeSpec] = {
    Opcode(row[0]): OpcodeSpec(*row) for row in _TABLE
}

_BY_MNEMONIC: dict[str, Opcode] = {row[1]: Opcode(row[0]) for row in _TABLE}

#: All opcode specs, in opcode-number order.
ALL_SPECS: tuple[OpcodeSpec, ...] = tuple(
    _SPECS[op] for op in sorted(_SPECS, key=int)
)


def spec_of(opcode: "Opcode | str | int") -> OpcodeSpec:
    """Look up the :class:`OpcodeSpec` by opcode, mnemonic or number."""
    if isinstance(opcode, str):
        try:
            opcode = _BY_MNEMONIC[opcode.lower()]
        except KeyError:
            raise KeyError(f"unknown mnemonic {opcode!r}") from None
    elif isinstance(opcode, int) and not isinstance(opcode, Opcode):
        opcode = Opcode(opcode)
    return _SPECS[opcode]
