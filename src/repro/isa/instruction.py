"""The :class:`Instruction` value type used throughout the simulator."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.isa.futypes import FUType
from repro.isa.opcodes import Format, Opcode, OpcodeSpec, OperandClass, spec_of

__all__ = ["Instruction"]


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``rd``, ``rs1`` and ``rs2`` are register indices whose register class
    (integer or floating-point) is determined by the opcode; unused operand
    slots are 0.  ``imm`` is the sign-extended immediate (branch/jump
    immediates are in instruction words).

    The spec-derived attributes (``spec``, ``fu_type``, ``latency``, the
    ``is_*`` predicates) are cached per instance: the scheduler reads them
    tens of times per cycle, and the value never changes for a frozen
    instruction.  ``cached_property`` writes straight into the instance
    ``__dict__``, which frozen dataclasses permit.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            v = getattr(self, name)
            if not 0 <= v < 32:
                raise ValueError(f"{name} out of range: {v}")

    @cached_property
    def spec(self) -> OpcodeSpec:
        return spec_of(self.opcode)

    @cached_property
    def fu_type(self) -> FUType:
        """The (single) functional-unit type that executes this instruction."""
        return self.spec.fu_type

    @cached_property
    def latency(self) -> int:
        return self.spec.latency

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @cached_property
    def is_branch(self) -> bool:
        return self.spec.is_branch

    @cached_property
    def is_jump(self) -> bool:
        return self.spec.is_jump

    @cached_property
    def is_control(self) -> bool:
        return self.is_branch or self.is_jump or self.spec.is_halt

    @cached_property
    def is_load(self) -> bool:
        return self.spec.is_load

    @cached_property
    def is_store(self) -> bool:
        return self.spec.is_store

    @cached_property
    def is_halt(self) -> bool:
        return self.spec.is_halt

    def destination(self) -> tuple[str, int] | None:
        """``(reg_class, index)`` written by this instruction, or ``None``.

        Writes to the hard-wired integer zero register are reported as
        ``None`` (they have no architectural effect and create no
        dependence).
        """
        spec = self.spec
        if spec.dst is OperandClass.NONE:
            return None
        if spec.dst is OperandClass.INT and self.rd == 0:
            return None
        return ("int" if spec.dst is OperandClass.INT else "fp"), self.rd

    def sources(self) -> tuple[tuple[str, int], ...]:
        """Registers read by this instruction as ``(reg_class, index)`` pairs.

        Reads of integer ``x0`` are omitted: they never create a dependence.
        """
        spec = self.spec
        out: list[tuple[str, int]] = []
        for cls, idx in ((spec.src1, self.rs1), (spec.src2, self.rs2)):
            if cls is OperandClass.NONE:
                continue
            if cls is OperandClass.INT and idx == 0:
                continue
            out.append(("int" if cls is OperandClass.INT else "fp", idx))
        return tuple(out)

    def __str__(self) -> str:
        from repro.isa.disassembler import format_instruction

        return format_instruction(self)
