"""The analysis engine: one process, whole tree, content-hash cached.

For every ``.py`` file the engine parses the source once, hands the
:class:`~repro.analysis.rules.FileContext` to every registered rule,
filters the raw findings through the file's inline suppressions, and
caches the surviving findings keyed by the file's SHA-256 — the same
content-hash idiom :class:`repro.evaluation.batch.ResultCache` uses for
simulation results.  A cache entry is valid only under the same *global
fingerprint* (engine version, every rule's ``(id, version)`` pair, the
raw config text), so changing a rule or the layer table re-analyses the
tree while day-to-day runs only re-parse files that changed.

A file that fails to parse yields one ``ENG001`` finding instead of
crashing the run: a syntax error anywhere must not hide findings
elsewhere.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules import (
    FileContext,
    Rule,
    all_rules,
    registry_fingerprint,
)
from repro.analysis.suppressions import SuppressionIndex

__all__ = ["AnalysisEngine", "analyze_paths", "ENGINE_VERSION"]

#: bump on engine-behaviour changes to invalidate every cache entry.
ENGINE_VERSION = 1

#: rule id reserved for files the engine itself cannot analyse.
PARSE_RULE_ID = "ENG001"


class AnalysisEngine:
    """Runs the registered rules over a file tree with result caching."""

    def __init__(
        self,
        config: AnalysisConfig,
        root: str | Path,
        repo_root: str | Path | None = None,
        cache_path: str | Path | None = None,
        rules: list[Rule] | None = None,
    ) -> None:
        #: directory the package lives in (``src/``): module paths — what
        #: hot zones, scopes and layers key on — are relative to it.
        self.root = Path(root).resolve()
        #: directory findings' display paths are relative to (repo root).
        self.repo_root = (
            Path(repo_root).resolve() if repo_root is not None else self.root
        )
        self.config = config
        self.rules = rules if rules is not None else all_rules()
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self._cache: dict[str, dict] = {}
        self.cache_hits = 0
        self.files_checked = 0
        self._fingerprint = self._global_fingerprint()
        if self.cache_path is not None:
            self._cache = self._load_cache()

    # ---------------------------------------------------------- fingerprint
    def _global_fingerprint(self) -> str:
        """SHA-256 over everything that can change a file's findings
        besides the file itself (the :func:`job_key` idiom)."""
        ruleset = tuple((r.id, r.version) for r in self.rules)
        blob = repr((ENGINE_VERSION, ruleset, registry_fingerprint(),
                     self.config.source_text))
        return hashlib.sha256(blob.encode()).hexdigest()

    # ---------------------------------------------------------------- cache
    def _load_cache(self) -> dict[str, dict]:
        try:
            raw = json.loads(self.cache_path.read_text())
            if raw.get("fingerprint") != self._fingerprint:
                return {}
            files = raw.get("files", {})
            return files if isinstance(files, dict) else {}
        except (OSError, ValueError, AttributeError):
            return {}

    def save_cache(self) -> None:
        if self.cache_path is None:
            return
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"fingerprint": self._fingerprint, "files": self._cache}
        self.cache_path.write_text(json.dumps(doc))

    # ------------------------------------------------------------- analysis
    def module_path_of(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def display_path_of(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.repo_root).as_posix()
        except ValueError:
            return path.as_posix()

    def analyze_file(self, path: Path) -> list[Finding]:
        """Findings of one file, post-suppression (cached by content)."""
        module_path = self.module_path_of(path)
        display_path = self.display_path_of(path)
        data = path.read_bytes()
        digest = hashlib.sha256(data).hexdigest()
        self.files_checked += 1
        cached = self._cache.get(module_path)
        if cached is not None and cached.get("sha256") == digest:
            self.cache_hits += 1
            return [Finding.from_dict(e) for e in cached["findings"]]

        source = data.decode("utf-8", errors="replace")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings = [
                Finding(
                    rule=PARSE_RULE_ID,
                    path=display_path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
            self._remember(module_path, digest, findings)
            return findings

        ctx = FileContext(
            module_path=module_path,
            display_path=display_path,
            source=source,
            tree=tree,
            config=self.config,
        )
        suppressions = SuppressionIndex(source, tree)
        findings = [
            f
            for rule in self.rules
            for f in rule.check(ctx)
            if not suppressions.is_suppressed(f.rule, f.line)
        ]
        findings.sort(key=Finding.sort_key)
        self._remember(module_path, digest, findings)
        return findings

    def _remember(self, module_path: str, digest: str, findings: list[Finding]) -> None:
        self._cache[module_path] = {
            "sha256": digest,
            "findings": [f.to_dict() for f in findings],
        }

    def run(self, paths: list[Path]) -> list[Finding]:
        """Analyse files and directories; returns sorted findings."""
        files: list[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        findings: list[Finding] = []
        for file in files:
            findings.extend(self.analyze_file(file))
        findings.sort(key=Finding.sort_key)
        if self.cache_path is not None:
            self.save_cache()
        return findings


def analyze_paths(
    paths: list[str | Path],
    config: AnalysisConfig,
    root: str | Path,
    repo_root: str | Path | None = None,
    cache_path: str | Path | None = None,
) -> list[Finding]:
    """One-call convenience wrapper used by tests and the CLI."""
    engine = AnalysisEngine(
        config, root=root, repo_root=repo_root, cache_path=cache_path
    )
    return engine.run([Path(p) for p in paths])
