"""The analysis engine: one process, whole tree, content-hash cached.

Two phases.  The *per-file* phase parses each target file once, hands the
:class:`~repro.analysis.rules.FileContext` to every registered rule,
filters raw findings through the file's inline suppressions, and caches
the surviving findings keyed by the file's SHA-256 — the same
content-hash idiom :class:`repro.evaluation.batch.ResultCache` uses for
simulation results.

The *graph* phase summarises **every** file under the package root (not
just the target set — a call graph with missing callees is wrong), links
the summaries into a whole-program :class:`~repro.analysis.graph.CallGraph`,
and runs the :class:`~repro.analysis.dataflow.GraphAnalysis` passes
(hot-zone reachability, determinism taint, cross-process shared state).
Module summaries are content-cached like findings.  Each file's
*interprocedural* findings are cached under a dependency-aware key: its
own content hash folded with a digest of everything those findings can
depend on — the interface digests of its direct callees, its functions'
hot-reachability chains, and its role attributions — so editing one leaf
file invalidates exactly its reverse-dependency cone.  ``graph_cache_hits``
counts the files whose interprocedural derivation was skipped.

Every cache section is valid only under the same *global fingerprint*
(engine + graph version, every rule's ``(id, version)`` pair, the raw
config text), so changing a rule or the layer table re-analyses the tree
while day-to-day runs only re-parse files that changed.

A file that fails to parse yields one ``ENG001`` finding instead of
crashing the run: a syntax error anywhere must not hide findings
elsewhere.  Unparsable files are simply absent from the call graph.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow import GRAPH_RULE_IDS, GraphAnalysis
from repro.analysis.findings import Finding
from repro.analysis.graph import (
    GRAPH_VERSION,
    build_graph,
    canonical_graph_json,
    summarize_module,
)
from repro.analysis.rules import (
    FileContext,
    Rule,
    all_rules,
    registry_fingerprint,
)
from repro.analysis.suppressions import SuppressionIndex

__all__ = ["AnalysisEngine", "analyze_paths", "ENGINE_VERSION"]

#: bump on engine-behaviour changes to invalidate every cache entry.
ENGINE_VERSION = 2

#: rule id reserved for files the engine itself cannot analyse.
PARSE_RULE_ID = "ENG001"


class AnalysisEngine:
    """Runs the registered rules over a file tree with result caching."""

    def __init__(
        self,
        config: AnalysisConfig,
        root: str | Path,
        repo_root: str | Path | None = None,
        cache_path: str | Path | None = None,
        rules: list[Rule] | None = None,
    ) -> None:
        #: directory the package lives in (``src/``): module paths — what
        #: hot zones, scopes and layers key on — are relative to it.
        self.root = Path(root).resolve()
        #: directory findings' display paths are relative to (repo root).
        self.repo_root = (
            Path(repo_root).resolve() if repo_root is not None else self.root
        )
        self.config = config
        self.rules = rules if rules is not None else all_rules()
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self._cache: dict[str, dict] = {}
        self._summary_cache: dict[str, dict] = {}
        self._graph_cache: dict[str, dict] = {}
        self.cache_hits = 0
        #: files whose interprocedural findings came from the
        #: dependency-aware cache (the cone-invalidation counter).
        self.graph_cache_hits = 0
        self.files_checked = 0
        self._fingerprint = self._global_fingerprint()
        self._graph = None
        self._analysis: GraphAnalysis | None = None
        if self.cache_path is not None:
            self._load_cache()

    # ---------------------------------------------------------- fingerprint
    def _global_fingerprint(self) -> str:
        """SHA-256 over everything that can change a file's findings
        besides the file itself (the :func:`job_key` idiom)."""
        ruleset = tuple((r.id, r.version) for r in self.rules)
        blob = repr((ENGINE_VERSION, GRAPH_VERSION, ruleset,
                     registry_fingerprint(), self.config.source_text))
        return hashlib.sha256(blob.encode()).hexdigest()

    # ---------------------------------------------------------------- cache
    def _load_cache(self) -> None:
        try:
            raw = json.loads(self.cache_path.read_text())
            if raw.get("fingerprint") != self._fingerprint:
                return
            for attr, key in (
                ("_cache", "files"),
                ("_summary_cache", "summaries"),
                ("_graph_cache", "graph_findings"),
            ):
                section = raw.get(key, {})
                if isinstance(section, dict):
                    setattr(self, attr, section)
        except (OSError, ValueError, AttributeError):
            return

    def save_cache(self) -> None:
        if self.cache_path is None:
            return
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "fingerprint": self._fingerprint,
            "files": self._cache,
            "summaries": self._summary_cache,
            "graph_findings": self._graph_cache,
        }
        self.cache_path.write_text(json.dumps(doc))

    # ------------------------------------------------------------- analysis
    def module_path_of(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def display_path_of(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.repo_root).as_posix()
        except ValueError:
            return path.as_posix()

    def analyze_file(self, path: Path) -> list[Finding]:
        """Per-file findings of one file, post-suppression (cached)."""
        module_path = self.module_path_of(path)
        display_path = self.display_path_of(path)
        data = path.read_bytes()
        digest = hashlib.sha256(data).hexdigest()
        self.files_checked += 1
        cached = self._cache.get(module_path)
        if cached is not None and cached.get("sha256") == digest:
            self.cache_hits += 1
            return [Finding.from_dict(e) for e in cached["findings"]]

        source = data.decode("utf-8", errors="replace")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings = [
                Finding(
                    rule=PARSE_RULE_ID,
                    path=display_path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
            self._remember(module_path, digest, findings)
            return findings

        ctx = FileContext(
            module_path=module_path,
            display_path=display_path,
            source=source,
            tree=tree,
            config=self.config,
        )
        suppressions = SuppressionIndex(source, tree)
        findings = [
            f
            for rule in self.rules
            for f in rule.check(ctx)
            if not suppressions.is_suppressed(f.rule, f.line)
        ]
        findings.sort(key=Finding.sort_key)
        self._remember(module_path, digest, findings)
        return findings

    def _remember(self, module_path: str, digest: str, findings: list[Finding]) -> None:
        self._cache[module_path] = {
            "sha256": digest,
            "findings": [f.to_dict() for f in findings],
        }

    # ---------------------------------------------------------- graph phase
    def _selected_graph_ids(self) -> set[str]:
        return ({r.id for r in self.rules} | {"ENG002"}) & GRAPH_RULE_IDS

    def summary_of(self, path: Path) -> tuple[str, str, dict | None]:
        """(module_path, sha256, summary-or-None) for one file, cached."""
        module_path = self.module_path_of(path)
        data = path.read_bytes()
        digest = hashlib.sha256(data).hexdigest()
        cached = self._summary_cache.get(module_path)
        if cached is not None and cached.get("sha256") == digest:
            return module_path, digest, cached["summary"]
        source = data.decode("utf-8", errors="replace")
        try:
            tree = ast.parse(source, filename=str(path))
            summary = summarize_module(module_path, source, tree, self.config)
        except SyntaxError:
            summary = None
        self._summary_cache[module_path] = {"sha256": digest, "summary": summary}
        return module_path, digest, summary

    def _graph_file_set(self, files: list[Path]) -> list[Path]:
        """The whole-program file set: everything under the package root,
        plus any explicitly targeted file outside it."""
        package_dir = self.root / self.config.package
        out: dict[str, Path] = {}
        if package_dir.is_dir():
            for path in sorted(package_dir.rglob("*.py")):
                out[self.module_path_of(path)] = path
        for path in files:
            out.setdefault(self.module_path_of(path), path)
        return [out[mp] for mp in sorted(out)]

    def build_analysis(self, files: list[Path]) -> GraphAnalysis:
        """Build (or reuse) the call graph + analyses for this run."""
        if self._analysis is not None:
            return self._analysis
        summaries: dict[str, dict] = {}
        self._file_digests: dict[str, str] = {}
        for path in self._graph_file_set(files):
            module_path, digest, summary = self.summary_of(path)
            self._file_digests[module_path] = digest
            if summary is not None:
                summaries[module_path] = summary
        self._graph = build_graph(summaries, self.config)
        self._analysis = GraphAnalysis(self._graph, self.config)
        return self._analysis

    def graph_findings_for(self, path: Path) -> list[Finding]:
        """One file's interprocedural findings (dependency-aware cache)."""
        analysis = self._analysis
        module_path = self.module_path_of(path)
        if analysis is None or module_path not in analysis.graph.summaries:
            return []
        context = analysis.context_for(module_path)
        context_blob = json.dumps(
            context, sort_keys=True, separators=(",", ":")
        )
        file_digest = self._file_digests.get(module_path, "")
        key = hashlib.sha256(
            (file_digest + context_blob).encode()
        ).hexdigest()
        cached = self._graph_cache.get(module_path)
        if cached is not None and cached.get("key") == key:
            self.graph_cache_hits += 1
            return [Finding.from_dict(e) for e in cached["findings"]]
        source = path.read_bytes().decode("utf-8", errors="replace")
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return []
        suppressions = SuppressionIndex(source, tree)
        findings = analysis.findings_for(
            module_path, self.display_path_of(path), suppressions
        )
        self._graph_cache[module_path] = {
            "key": key,
            "findings": [f.to_dict() for f in findings],
        }
        return findings

    def graph_json(self) -> str:
        """The deterministic ``--graph-out`` artifact (builds if needed)."""
        if self._analysis is None:
            self.build_analysis([])
        return canonical_graph_json(self._graph)

    def file_closure(self, changed: set[str]) -> set[str]:
        """``--changed`` support: the changed module paths plus every
        transitive reverse call-graph/import dependent."""
        if self._analysis is None:
            self.build_analysis([])
        return self._graph.reverse_dependents(changed)

    # ------------------------------------------------------------------ run
    def _expand(self, paths: list[Path]) -> list[Path]:
        files: list[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        return files

    def run(self, paths: list[Path]) -> list[Finding]:
        """Analyse files and directories; returns sorted findings."""
        files = self._expand(paths)
        findings: list[Finding] = []
        for file in files:
            findings.extend(self.analyze_file(file))
        selected = self._selected_graph_ids()
        if selected:
            self.build_analysis(files)
            for file in files:
                findings.extend(
                    f for f in self.graph_findings_for(file)
                    if f.rule in selected
                )
        findings.sort(key=Finding.sort_key)
        if self.cache_path is not None:
            self.save_cache()
        return findings


def analyze_paths(
    paths: list[str | Path],
    config: AnalysisConfig,
    root: str | Path,
    repo_root: str | Path | None = None,
    cache_path: str | Path | None = None,
) -> list[Finding]:
    """One-call convenience wrapper used by tests and the CLI."""
    engine = AnalysisEngine(
        config, root=root, repo_root=repo_root, cache_path=cache_path
    )
    return engine.run([Path(p) for p in paths])
