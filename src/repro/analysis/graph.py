"""Whole-program call graph for the analysis engine.

Two stages, both stdlib-only:

1. :func:`summarize_module` walks one file's AST and produces a plain-dict
   *module summary*: imports, classes (bases, methods, inferred attribute
   types), functions with their call sites, allocation/format *effect
   sites* (pre-filtered through the file's inline suppressions), taint-
   relevant assignments/returns/sinks, and module-level mutable bindings.
   Summaries are pure functions of file content + analysis config, so the
   engine caches them by content hash next to the per-file findings.

2. :func:`build_graph` links the summaries into a :class:`CallGraph`:
   nodes are ``"module/path.py::Qual.name"``, edges carry a *kind* and a
   *confidence* in [0, 1].  Name calls, self-method calls and constructor
   calls resolve statically (confidence 1.0); calls through typed
   attributes (``self.loader.step()``) resolve through the inferred
   attribute types (0.9) with polymorphic override edges to subclasses
   (0.8); dict-dispatch (``TABLE[key]()``) fans out to every table entry
   (0.5); bare function references passed as arguments are recorded as
   first-class-reference edges (0.3); anything else is kept as an
   unresolved dynamic edge (0.2).  The hot-zone and taint passes only
   propagate across edges at or above :data:`OBLIGATION_CONFIDENCE`; the
   process-role pass uses the looser :data:`ROLE_CONFIDENCE`.

A call site whose line carries ``# repro: cold-call -- reason`` yields a
cold edge: recorded in the graph (and the ``--graph-out`` artifact) but
skipped by hot-zone reachability.

Everything here iterates in sorted order and serialises through
:func:`canonical_graph_json`, so two builds over the same tree are
byte-identical — CI asserts exactly that.
"""

from __future__ import annotations

import ast
import json

from repro.analysis.config import AnalysisConfig
from repro.analysis.suppressions import (
    SuppressionIndex,
    collect_cold_call_comments,
)

__all__ = [
    "CallGraph",
    "summarize_module",
    "build_graph",
    "canonical_graph_json",
    "OBLIGATION_CONFIDENCE",
    "ROLE_CONFIDENCE",
    "GRAPH_VERSION",
]

#: bump on summary-schema or resolution changes (part of the engine
#: fingerprint, so old cached summaries are discarded).
GRAPH_VERSION = 1

#: minimum edge confidence for hot-obligation and taint propagation.
OBLIGATION_CONFIDENCE = 0.75

#: minimum edge confidence for process-role attribution (CON006/CON007).
ROLE_CONFIDENCE = 0.5

#: calls the taint pass treats as nondeterminism sources, by resolved
#: dotted name.  Dict-view iteration order is deliberately absent: the
#: per-file DET003 rule already polices hashing over unsorted views, and
#: plain dict iteration is insertion-ordered (deterministic) in Python.
TAINT_SOURCES = {
    "time.time": "wall clock (time.time)",
    "time.time_ns": "wall clock (time.time_ns)",
    "time.perf_counter": "performance counter",
    "time.perf_counter_ns": "performance counter",
    "time.monotonic": "monotonic clock",
    "time.monotonic_ns": "monotonic clock",
    "time.process_time": "process clock",
    "time.thread_time": "thread clock",
    "datetime.datetime.now": "wall clock (datetime.now)",
    "datetime.datetime.utcnow": "wall clock (datetime.utcnow)",
    "datetime.datetime.today": "wall clock (datetime.today)",
    "datetime.date.today": "wall clock (date.today)",
    "random.random": "unseeded global RNG",
    "random.randint": "unseeded global RNG",
    "random.randrange": "unseeded global RNG",
    "random.choice": "unseeded global RNG",
    "random.choices": "unseeded global RNG",
    "random.shuffle": "unseeded global RNG",
    "random.sample": "unseeded global RNG",
    "random.uniform": "unseeded global RNG",
    "random.gauss": "unseeded global RNG",
    "random.getrandbits": "unseeded global RNG",
    "os.getenv": "environment read (os.getenv)",
    "os.environ.get": "environment read (os.environ)",
    "os.environ": "environment read (os.environ)",
    "id": "object identity (id)",
    "hash": "salted hash (PYTHONHASHSEED)",
    "uuid.uuid1": "uuid1 (host/time derived)",
    "uuid.uuid4": "random uuid",
}

#: canonical-JSON sink functions (DET007), by resolved dotted name.
TAINT_SINKS = {
    "repro.utils.canonical.canonical_dumps",
    "repro.utils.canonical.canonical_dump",
}

#: module-level constructor calls treated as explicit cross-process /
#: cross-thread channels — bindings holding them are exempt from the
#: shared-state rules (the channel *is* the sanctioned mechanism).
_CHANNEL_CTORS = {"Queue", "SimpleQueue", "JoinableQueue", "LifoQueue", "deque"}

_MUTABLE_CTORS = {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter"}

#: mutating method names on module-level containers (mirrors CON002).
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft",
}


def _chain_of(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; subscripts become "[]"; else None."""
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            parts.append("[]")
            node = node.value
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "super":
                parts.append("super()")
                return parts[::-1]
            return None
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return parts[::-1]
        else:
            return None


def _type_chain(annotation: ast.AST) -> list[str] | None:
    """Best-effort class-name chain from an annotation/constructor node.

    ``Fabric`` -> ["Fabric"]; ``m.Fabric | None`` -> ["m", "Fabric"]
    (the first non-None alternative); strings and subscripted generics
    are ignored.
    """
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _type_chain(annotation.left)
        return left if left is not None else _type_chain(annotation.right)
    if isinstance(annotation, ast.Constant):
        return None
    if isinstance(annotation, ast.Subscript):
        return None
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        chain = _chain_of(annotation)
        if chain and chain[-1] != "None":
            return chain
    return None


class _FunctionVisitor(ast.NodeVisitor):
    """Collects one function's call sites, effects and taint ops."""

    def __init__(
        self,
        summary: dict,
        qualname: str,
        cls: str | None,
        config: AnalysisConfig,
        module_path: str,
        suppressions: SuppressionIndex,
        cold_lines: dict[int, str],
    ) -> None:
        self.fn: dict = {
            "line": 0,
            "cls": cls,
            "calls": [],
            "effects": [],
            "raises_only": False,
            "local_types": {},
            "assigns": [],
            "returns": [],
            "refs": [],
            "global_writes": [],
            "global_reads": [],
        }
        self.summary = summary
        self.qualname = qualname
        self.config = config
        self.module_path = module_path
        self.suppressions = suppressions
        self.cold_lines = cold_lines
        self._raise_depth = 0
        self._loop_depth = 0
        self._guard_depth = 0
        self._local_names: set[str] = set()
        self._globals: set[str] = set()

    # ------------------------------------------------------------- helpers
    def _effect(self, rule: str, node: ast.AST, detail: str) -> None:
        if self._raise_depth:
            return
        line = getattr(node, "lineno", 0)
        if self.suppressions.is_suppressed(rule, line):
            return
        self.fn["effects"].append(
            {"rule": rule, "line": line, "col": getattr(node, "col_offset", 0),
             "detail": detail}
        )

    def _call_index(
        self, chain: list[str], node: ast.AST, uses: list | None = None
    ) -> int:
        line = getattr(node, "lineno", 0)
        self.fn["calls"].append(
            {"chain": chain, "line": line,
             "col": getattr(node, "col_offset", 0),
             "cold": self.cold_lines.get(line), "uses": uses or []}
        )
        return len(self.fn["calls"]) - 1

    def _refs_of(self, node: ast.AST) -> list:
        """Taint-relevant references inside an expression."""
        refs: list = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                chain = _chain_of(sub.func)
                if chain is not None:
                    refs.append(["callchain", chain, sub.lineno])
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                refs.append(["local", sub.id])
            elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                chain = _chain_of(sub)
                if chain is None:
                    continue
                if chain[0] == "self" and len(chain) == 2:
                    refs.append(["state", chain[1]])
                else:
                    refs.append(["chainload", chain])
        return refs

    # -------------------------------------------------------------- visits
    def visit_Raise(self, node: ast.Raise) -> None:
        self._raise_depth += 1
        self.generic_visit(node)
        self._raise_depth -= 1

    def _visit_comprehension(self, node: ast.AST, what: str) -> None:
        self._effect("HOT001", node, what)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, "list comprehension")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node, "set comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, "generator expression")

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        self._effect("HOT003", node, "f-string")
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._effect("HOT004", node, "lambda")
        # don't descend: the lambda body runs in its own scope

    def visit_For(self, node: ast.For) -> None:
        self._loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._loop(node)

    def _loop(self, node: ast.AST) -> None:
        if self.config.in_scope(self.module_path, self.config.vector_kernel_scope):
            self._effect("HOT007", node, "per-lane Python loop")
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        chain = _chain_of(node.func)
        if chain is not None:
            if len(chain) == 1 and chain[0] in ("dict", "list", "set"):
                self._effect("HOT002", node, f"{chain[0]}() construction")
            arg_uses: list = []
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                arg_uses.extend(self._refs_of(arg))
            self._call_index(chain, node, arg_uses)
            if (
                len(chain) == 2
                and chain[0] in self.summary["module_mutables"]
                and chain[0] not in self._local_names
                and chain[1] in _MUTATOR_METHODS
            ):
                self.fn["global_writes"].append([chain[0], node.lineno])
            if (
                len(chain) >= 1
                and chain[0].lstrip("_") in ("tel", "telemetry")
                and not self._telemetry_guarded(node)
            ):
                self._effect("HOT006", node, "unguarded telemetry call")
        # bare function references in argument position: conservative
        # first-class-function edges
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                ref_chain = _chain_of(arg)
                if ref_chain is not None and ref_chain[-1] != "[]":
                    self.fn["refs"].append(
                        {"chain": ref_chain, "line": arg.lineno}
                    )
        self.generic_visit(node)

    def _telemetry_guarded(self, node: ast.Call) -> bool:
        return self._guard_depth > 0

    @staticmethod
    def _mentions_telemetry(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None and name.lstrip("_") in ("tel", "telemetry"):
                return True
        return False

    def visit_If(self, node: ast.If) -> None:
        guarded = self._mentions_telemetry(node.test)
        if guarded:
            self._guard_depth += 1
        self.generic_visit(node)
        if guarded:
            self._guard_depth -= 1

    def visit_IfExp(self, node: ast.IfExp) -> None:
        guarded = self._mentions_telemetry(node.test)
        if guarded:
            self._guard_depth += 1
        self.generic_visit(node)
        if guarded:
            self._guard_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_assign(node.targets, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.target is not None and isinstance(node.target, ast.Name):
            chain = _type_chain(node.annotation)
            if chain is not None:
                self.fn["local_types"].setdefault(node.target.id, chain)
        if node.value is not None:
            self._record_assign([node.target], node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_assign([node.target], node.value, node)
        self.generic_visit(node)

    def _record_assign(self, targets: list, value: ast.AST, node: ast.AST) -> None:
        uses = self._refs_of(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if isinstance(value, ast.Call):
                    chain = _chain_of(value.func)
                    if chain is not None:
                        self.fn["local_types"].setdefault(target.id, chain)
                self.fn["assigns"].append(
                    {"t": ["local", target.id], "uses": uses, "line": node.lineno}
                )
                if (
                    target.id in self.summary["module_mutables"]
                    and target.id in self._globals
                ):
                    self.fn["global_writes"].append([target.id, node.lineno])
                else:
                    self._local_names.add(target.id)
            elif isinstance(target, ast.Attribute):
                chain = _chain_of(target)
                if chain is not None and chain[0] == "self" and len(chain) == 2:
                    self.fn["assigns"].append(
                        {"t": ["state", chain[1]], "uses": uses,
                         "line": node.lineno}
                    )
            elif isinstance(target, ast.Subscript):
                chain = _chain_of(target.value)
                if (
                    chain is not None
                    and len(chain) == 1
                    and chain[0] in self.summary["module_mutables"]
                    and chain[0] not in self._local_names
                ):
                    self.fn["global_writes"].append([chain[0], node.lineno])
            elif isinstance(target, (ast.Tuple, ast.List)):
                self._record_assign(list(target.elts), value, node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.fn["returns"].append(
                {"uses": self._refs_of(node.value), "line": node.lineno}
            )
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._globals.update(node.names)

    def visit_Name(self, node: ast.Name) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and node.id in self.summary["module_mutables"]
            and node.id not in self._local_names
        ):
            self.fn["global_reads"].append([node.id, node.lineno])

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are summarised as their own functions

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass


def _is_raises_only(node: ast.AST) -> bool:
    body = [
        stmt for stmt in node.body
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
    ]
    return bool(body) and all(isinstance(stmt, ast.Raise) for stmt in body)


def summarize_module(
    module_path: str,
    source: str,
    tree: ast.AST,
    config: AnalysisConfig,
) -> dict:
    """One file -> its plain-dict module summary (see module docstring)."""
    dotted = module_path[:-3].replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    suppressions = SuppressionIndex(source, tree)
    cold_lines, malformed_cold = collect_cold_call_comments(source)
    summary: dict = {
        "module_path": module_path,
        "dotted": dotted,
        "imports": {},
        "classes": {},
        "functions": {},
        "module_mutables": {},
        "dispatch_tables": {},
        "malformed_cold": sorted(malformed_cold),
    }

    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                name = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                summary["imports"][name] = ["module", target]
        elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
            for alias in stmt.names:
                summary["imports"][alias.asname or alias.name] = [
                    "from", stmt.module, alias.name,
                ]
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                ctor: str | None = None
                if isinstance(value, (ast.Dict, ast.List, ast.Set)):
                    ctor = type(value).__name__.lower()
                elif isinstance(value, ast.Call):
                    chain = _chain_of(value.func)
                    if chain is not None and chain[-1] in (
                        _MUTABLE_CTORS | _CHANNEL_CTORS
                    ):
                        ctor = chain[-1]
                if ctor is not None:
                    summary["module_mutables"][target.id] = {
                        "line": stmt.lineno,
                        "ctor": ctor,
                        "channel": ctor in _CHANNEL_CTORS,
                    }
                if isinstance(value, ast.Dict):
                    entries = []
                    for v in value.values:
                        chain = _chain_of(v)
                        if chain is not None:
                            entries.append(chain)
                    if entries:
                        summary["dispatch_tables"][target.id] = entries

    # function-level (lazy) imports — common here to break layering
    # cycles — resolve like module-level ones; module scope wins on a
    # name collision, which is the conservative direction
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                summary["imports"].setdefault(name, ["module", target])
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                summary["imports"].setdefault(
                    alias.asname or alias.name, ["from", node.module, alias.name]
                )

    def walk_scope(
        body: list, prefix: str, cls: str | None, class_info: dict | None
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                visitor = _FunctionVisitor(
                    summary, qualname, cls, config, module_path,
                    suppressions, cold_lines,
                )
                visitor.fn["line"] = stmt.lineno
                visitor.fn["raises_only"] = _is_raises_only(stmt)
                for arg in (
                    stmt.args.posonlyargs + stmt.args.args + stmt.args.kwonlyargs
                ):
                    if arg.annotation is not None:
                        chain = _type_chain(arg.annotation)
                        if chain is not None:
                            visitor.fn["local_types"][arg.arg] = chain
                for sub in stmt.body:
                    visitor.visit(sub)
                summary["functions"][qualname] = visitor.fn
                if class_info is not None:
                    class_info["methods"][stmt.name] = qualname
                    for record in visitor.fn["assigns"]:
                        if record["t"][0] != "state":
                            continue
                        # infer attribute types from constructor/annotated
                        # assignments anywhere in the class
                        for use in record["uses"]:
                            if use[0] == "callchain":
                                class_info["attr_candidates"].setdefault(
                                    record["t"][1], []
                                ).append(use[1])
                            elif use[0] == "local":
                                chain = visitor.fn["local_types"].get(use[1])
                                if chain is not None:
                                    class_info["attr_candidates"].setdefault(
                                        record["t"][1], []
                                    ).append(chain)
                # nested defs: summarised with a qualified name, calls
                # from the parent resolve via the "name" fallback
                walk_scope(stmt.body, f"{qualname}.", cls, None)
            elif isinstance(stmt, ast.ClassDef):
                info = {
                    "bases": [
                        c for c in (_chain_of(b) for b in stmt.bases)
                        if c is not None
                    ],
                    "methods": {},
                    "attr_candidates": {},
                    "line": stmt.lineno,
                }
                summary["classes"][stmt.name] = info
                for sub in stmt.body:
                    if isinstance(sub, ast.AnnAssign) and isinstance(
                        sub.target, ast.Name
                    ):
                        chain = _type_chain(sub.annotation)
                        if chain is not None:
                            info["attr_candidates"].setdefault(
                                sub.target.id, []
                            ).append(chain)
                walk_scope(stmt.body, f"{stmt.name}.", stmt.name, info)

    walk_scope(tree.body, "", None, None)
    return summary


# --------------------------------------------------------------------- graph
class CallGraph:
    """The linked whole-program graph plus its resolution indexes."""

    def __init__(self, summaries: dict[str, dict], config: AnalysisConfig) -> None:
        #: module_path -> summary, in sorted order.
        self.summaries = {k: summaries[k] for k in sorted(summaries)}
        self.config = config
        #: dotted module name -> module_path.
        self.modules = {s["dotted"]: mp for mp, s in self.summaries.items()}
        #: node id -> function record.
        self.functions: dict[str, dict] = {}
        #: class id ("module_path::ClassName") -> class record.
        self.classes: dict[str, dict] = {}
        #: method name -> sorted class ids defining it (fallback lookup).
        self._method_index: dict[str, list[str]] = {}
        #: class id -> sorted subclass ids (direct).
        self.subclasses: dict[str, list[str]] = {}
        #: edges: (caller, callee, kind, confidence, line, cold-reason).
        self.edges: list[tuple[str, str, str, float, int, str | None]] = []
        #: unresolved dynamic call sites: (caller, chain, line, confidence).
        self.dynamic: list[tuple[str, str, int, float]] = []
        self._out: dict[str, list[int]] = {}
        self._in: dict[str, list[int]] = {}
        self._file_deps: dict[str, list[str]] | None = None
        self._build_indexes()
        self._link()

    # ------------------------------------------------------------- indexes
    def _build_indexes(self) -> None:
        for mp, summary in self.summaries.items():
            for qualname, fn in summary["functions"].items():
                self.functions[f"{mp}::{qualname}"] = fn
            for cls, info in summary["classes"].items():
                self.classes[f"{mp}::{cls}"] = info
                for method in info["methods"]:
                    self._method_index.setdefault(method, []).append(f"{mp}::{cls}")
        for methods in self._method_index.values():
            methods.sort()
        # resolve base-class chains to class ids, then invert
        for cid in sorted(self.classes):
            mp, _, cls = cid.partition("::")
            info = self.classes[cid]
            resolved: list[str] = []
            for chain in info["bases"]:
                base = self._resolve_class_chain(mp, chain)
                if base is not None:
                    resolved.append(base)
                    self.subclasses.setdefault(base, []).append(cid)
            info["base_ids"] = resolved
        for subs in self.subclasses.values():
            subs.sort()

    def _resolve_import(self, mp: str, name: str, depth: int = 0):
        """An imported alias -> ("module", path) | ("func"/"class", node id)
        | ("external", dotted) | None."""
        if depth > 6:
            return None
        summary = self.summaries[mp]
        imp = summary["imports"].get(name)
        if imp is None:
            return None
        if imp[0] == "module":
            target = imp[1]
            if target in self.modules:
                return ("module", self.modules[target])
            # package import: repro.steering -> repro/steering/__init__.py
            return ("external", target)
        target_module, member = imp[1], imp[2]
        target_mp = self.modules.get(target_module)
        if target_mp is None:
            submodule = self.modules.get(f"{target_module}.{member}")
            if submodule is not None:
                return ("module", submodule)
            return ("external", f"{target_module}.{member}")
        target_summary = self.summaries[target_mp]
        if member in target_summary["classes"]:
            return ("class", f"{target_mp}::{member}")
        if member in target_summary["functions"]:
            return ("func", f"{target_mp}::{member}")
        if member in target_summary["imports"]:
            return self._resolve_import(target_mp, member, depth + 1)
        submodule = self.modules.get(f"{target_module}.{member}")
        if submodule is not None:
            return ("module", submodule)
        return ("external", f"{target_module}.{member}")

    def _resolve_class_chain(self, mp: str, chain: list[str]) -> str | None:
        """A class-name chain in module ``mp`` -> class id, or None."""
        if not chain:
            return None
        head = chain[0]
        summary = self.summaries[mp]
        if len(chain) == 1:
            if head in summary["classes"]:
                return f"{mp}::{head}"
            resolved = self._resolve_import(mp, head)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        resolved = self._resolve_import(mp, head)
        if resolved is not None and resolved[0] == "module" and len(chain) == 2:
            target_mp = resolved[1]
            if chain[1] in self.summaries[target_mp]["classes"]:
                return f"{target_mp}::{chain[1]}"
        return None

    def class_attr_type(self, cid: str, attr: str) -> list[str]:
        """Inferred class ids an attribute of ``cid`` may hold (with MRO)."""
        out: list[str] = []
        seen: set[str] = set()
        stack = [cid]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            info = self.classes[current]
            mp = current.partition("::")[0]
            for chain in info["attr_candidates"].get(attr, []):
                resolved = self._resolve_class_chain(mp, chain)
                if resolved is not None and resolved not in out:
                    out.append(resolved)
            stack.extend(info.get("base_ids", []))
        return sorted(out)

    def lookup_method(self, cid: str, method: str) -> str | None:
        """Method resolution through the (linearised) base chain."""
        seen: set[str] = set()
        stack = [cid]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            info = self.classes[current]
            if method in info["methods"]:
                mp = current.partition("::")[0]
                return f"{mp}::{info['methods'][method]}"
            stack.extend(info.get("base_ids", []))
        return None

    def override_targets(self, cid: str, method: str) -> list[str]:
        """Every subclass override of ``cid.method`` (transitively)."""
        out: list[str] = []
        stack = list(self.subclasses.get(cid, []))
        seen: set[str] = set()
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            info = self.classes.get(sub)
            if info is None:
                continue
            if method in info["methods"]:
                mp = sub.partition("::")[0]
                out.append(f"{mp}::{info['methods'][method]}")
            stack.extend(self.subclasses.get(sub, []))
        return sorted(out)

    # -------------------------------------------------------------- linking
    def _add_edge(
        self, src: str, dst: str, kind: str, confidence: float,
        line: int, cold: str | None,
    ) -> None:
        index = len(self.edges)
        self.edges.append((src, dst, kind, confidence, line, cold))
        self._out.setdefault(src, []).append(index)
        self._in.setdefault(dst, []).append(index)

    def _link(self) -> None:
        for node_id in sorted(self.functions):
            mp, _, qualname = node_id.partition("::")
            fn = self.functions[node_id]
            for index, site in enumerate(fn["calls"]):
                targets = self.resolve_call(mp, qualname, fn, site["chain"])
                site["resolved"] = [
                    [t, kind, conf] for t, kind, conf in targets
                ]
                if not targets:
                    self.dynamic.append(
                        (node_id, ".".join(site["chain"]), site["line"], 0.2)
                    )
                    continue
                for target, kind, confidence in targets:
                    if target.startswith("<"):
                        continue  # sources/sinks: no project edge
                    self._add_edge(
                        node_id, target, kind, confidence,
                        site["line"], site["cold"],
                    )
            for ref in fn["refs"]:
                resolved = self._resolve_function_chain(mp, ref["chain"])
                if resolved is not None:
                    self._add_edge(
                        node_id, resolved, "first-class-ref", 0.3,
                        ref["line"], None,
                    )

    def _resolve_function_chain(self, mp: str, chain: list[str]) -> str | None:
        summary = self.summaries[mp]
        head = chain[0]
        if len(chain) == 1:
            if head in summary["functions"]:
                return f"{mp}::{head}"
            resolved = self._resolve_import(mp, head)
            if resolved is not None and resolved[0] == "func":
                return resolved[1]
            return None
        resolved = self._resolve_import(mp, head)
        if resolved is not None and resolved[0] == "module" and len(chain) == 2:
            target_mp = resolved[1]
            if chain[1] in self.summaries[target_mp]["functions"]:
                return f"{target_mp}::{chain[1]}"
        return None

    def external_name(self, mp: str, chain: list[str]) -> str | None:
        """Resolved dotted name for a call into a non-project module."""
        head = chain[0]
        resolved = self._resolve_import(mp, head)
        if resolved is None:
            if len(chain) == 1:
                return head  # builtins: id(), hash(), print()
            return None
        if resolved[0] == "external":
            return ".".join([resolved[1]] + chain[1:])
        return None

    def resolve_call(
        self, mp: str, qualname: str, fn: dict, chain: list[str]
    ) -> list[tuple[str, str, float]]:
        """One call chain -> [(target node id | "<source:...>", kind, conf)].

        Target ids starting with ``<`` are taint sources/sinks resolved to
        non-project callables; they never become graph edges but the taint
        pass consumes them.
        """
        summary = self.summaries[mp]
        out: list[tuple[str, str, float]] = []

        def class_call_targets(
            cid: str, rest: list[str], confidence: float
        ) -> None:
            """Resolve ``<instance of cid>.rest...`` method calls."""
            current = [cid]
            for attr in rest[:-1]:
                next_classes: list[str] = []
                for c in current:
                    next_classes.extend(self.class_attr_type(c, attr))
                current = sorted(set(next_classes))
                confidence = min(confidence, 0.9)
                if not current:
                    return
            method = rest[-1]
            for c in current:
                found = self.lookup_method(c, method)
                if found is not None:
                    out.append((found, "method", confidence))
                for override in self.override_targets(c, method):
                    if override != found:
                        out.append((override, "polymorphic", min(confidence, 0.8)))

        head = chain[0]
        cls = fn.get("cls")
        if head == "self" and cls is not None:
            cid = f"{mp}::{cls}"
            if len(chain) >= 2:
                class_call_targets(cid, chain[1:], 1.0 if len(chain) == 2 else 0.9)
                if len(chain) == 2:
                    # attribute holding a callable instance: resolve __call__
                    for attr_cid in self.class_attr_type(cid, chain[1]):
                        found = self.lookup_method(attr_cid, "__call__")
                        if found is not None:
                            out.append((found, "callable-attr", 0.9))
            return out
        if head == "super()" and cls is not None and len(chain) == 2:
            info = self.classes.get(f"{mp}::{cls}")
            if info is not None:
                for base in info.get("base_ids", []):
                    found = self.lookup_method(base, chain[1])
                    if found is not None:
                        out.append((found, "super", 1.0))
            return out
        # dict-dispatch: TABLE[key]() and TABLE[key].method() fan out to
        # every table entry, conservatively, at dispatch confidence
        if len(chain) == 2 and chain[1] == "[]":
            for entry in summary["dispatch_tables"].get(chain[0], []):
                resolved = self._resolve_function_chain(mp, entry)
                if resolved is not None:
                    out.append((resolved, "dict-dispatch", 0.5))
            return out
        if "[]" in chain:
            return out

        if len(chain) == 1:
            if head in summary["functions"]:
                return [(f"{mp}::{head}", "static", 1.0)]
            if head in summary["classes"]:
                init = self.lookup_method(f"{mp}::{head}", "__init__")
                if init is not None:
                    return [(init, "constructor", 1.0)]
                return []
            resolved = self._resolve_import(mp, head)
            if resolved is not None:
                if resolved[0] == "func":
                    return [(resolved[1], "static", 1.0)]
                if resolved[0] == "class":
                    init = self.lookup_method(resolved[1], "__init__")
                    if init is not None:
                        return [(init, "constructor", 1.0)]
                    return []
            external = self.external_name(mp, chain)
            if external is not None and (
                external in TAINT_SOURCES or external in TAINT_SINKS
            ):
                return [(f"<ext:{external}>", "external", 1.0)]
            return []

        # qualified calls: local variable, imported module/class, or a
        # unique-method-name fallback
        local_chain = fn["local_types"].get(head)
        if local_chain is not None:
            cid = self._resolve_class_chain(mp, local_chain)
            if cid is not None:
                class_call_targets(cid, chain[1:], 0.9)
                return out
        resolved = self._resolve_import(mp, head)
        if resolved is not None:
            if resolved[0] == "module":
                target_mp = resolved[1]
                if len(chain) == 2:
                    target_summary = self.summaries[target_mp]
                    if chain[1] in target_summary["functions"]:
                        return [(f"{target_mp}::{chain[1]}", "static", 1.0)]
                    if chain[1] in target_summary["classes"]:
                        init = self.lookup_method(
                            f"{target_mp}::{chain[1]}", "__init__"
                        )
                        if init is not None:
                            return [(init, "constructor", 1.0)]
                return out
            if resolved[0] == "class":
                # ClassName.method(...) — also covers alternate ctors
                found = self.lookup_method(resolved[1], chain[1])
                if found is not None:
                    return [(found, "method", 1.0)]
                return out
        if head in summary["classes"] and len(chain) == 2:
            found = self.lookup_method(f"{mp}::{head}", chain[1])
            if found is not None:
                return [(found, "method", 1.0)]
            return out
        external = self.external_name(mp, chain)
        if external is not None:
            if external in TAINT_SOURCES or external in TAINT_SINKS:
                return [(f"<ext:{external}>", "external", 1.0)]
            if external.split(".")[0] not in self.modules:
                prefix = external.split(".")[0]
                if summary["imports"].get(prefix) is not None or prefix == external:
                    return out
        # unique-method-name fallback: recorded, never obligating
        method = chain[-1]
        owners = self._method_index.get(method, [])
        if len(owners) == 1:
            found = self.lookup_method(owners[0], method)
            if found is not None:
                return [(found, "unique-name", 0.5)]
        return out

    # ------------------------------------------------------------ traversal
    def out_edges(self, node_id: str):
        for index in self._out.get(node_id, []):
            yield self.edges[index]

    def reachable_from(
        self,
        roots: list[str],
        min_confidence: float,
        skip_cold: bool = False,
    ) -> dict[str, list]:
        """BFS; returns node -> chain of (caller node, call line) hops."""
        chains: dict[str, list] = {}
        queue: list[str] = []
        for root in sorted(roots):
            if root in self.functions and root not in chains:
                chains[root] = []
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for src, dst, kind, confidence, line, cold in self.out_edges(current):
                if confidence < min_confidence:
                    continue
                if skip_cold and cold is not None:
                    continue
                if dst in chains or dst not in self.functions:
                    continue
                chains[dst] = chains[current] + [[src, line]]
                queue.append(dst)
        return chains

    def file_dependencies(self) -> dict[str, list[str]]:
        """module_path -> sorted module_paths it depends on (calls or
        imports); used by ``repro lint --changed`` reverse-cone expansion."""
        if self._file_deps is not None:
            return self._file_deps
        deps: dict[str, set[str]] = {mp: set() for mp in self.summaries}
        for src, dst, _, _, _, _ in self.edges:
            src_mp = src.partition("::")[0]
            dst_mp = dst.partition("::")[0]
            if src_mp != dst_mp:
                deps[src_mp].add(dst_mp)
        for mp, summary in self.summaries.items():
            for imp in summary["imports"].values():
                dotted = imp[1]
                target = self.modules.get(dotted)
                if target is None and imp[0] == "from":
                    target = self.modules.get(f"{imp[1]}.{imp[2]}")
                if target is not None and target != mp:
                    deps[mp].add(target)
        self._file_deps = {
            mp: sorted(targets) for mp, targets in sorted(deps.items())
        }
        return self._file_deps

    def reverse_dependents(self, changed: set[str]) -> set[str]:
        """Transitive closure of files whose findings may change when any
        file in ``changed`` changes."""
        deps = self.file_dependencies()
        reverse: dict[str, set[str]] = {}
        for mp, targets in deps.items():
            for target in targets:
                reverse.setdefault(target, set()).add(mp)
        out = set(changed)
        queue = list(changed)
        while queue:
            current = queue.pop()
            for dependent in reverse.get(current, ()):
                if dependent not in out:
                    out.add(dependent)
                    queue.append(dependent)
        return out


def build_graph(summaries: dict[str, dict], config: AnalysisConfig) -> CallGraph:
    return CallGraph(summaries, config)


def canonical_graph_json(graph: CallGraph) -> str:
    """Deterministic JSON artifact for ``repro lint --graph-out``."""
    nodes = {}
    for node_id in sorted(graph.functions):
        fn = graph.functions[node_id]
        nodes[node_id] = {
            "line": fn["line"],
            "effects": sorted({e["rule"] for e in fn["effects"]}),
            "raises_only": fn["raises_only"],
        }
    edges = [
        {
            "from": src, "to": dst, "kind": kind,
            "confidence": confidence, "line": line,
            **({"cold": cold} if cold is not None else {}),
        }
        for src, dst, kind, confidence, line, cold in sorted(
            graph.edges, key=lambda e: (e[0], e[4], e[1], e[2])
        )
    ]
    dynamic = [
        {"from": src, "call": call, "line": line, "confidence": confidence}
        for src, call, line, confidence in sorted(graph.dynamic)
    ]
    doc = {
        "version": GRAPH_VERSION,
        "modules": sorted(graph.summaries),
        "nodes": nodes,
        "edges": edges,
        "dynamic": dynamic,
    }
    return json.dumps(doc, indent=2, sort_keys=True)
