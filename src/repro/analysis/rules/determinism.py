"""Determinism rules (``DET``): the core model must be a pure function.

Content-keyed result caching (:func:`repro.evaluation.batch.job_key`)
and the bit-identical disabled-telemetry guarantee are sound only
because a simulation's outcome depends on nothing but its inputs.
These rules police the packages the ``[scopes] determinism`` table
names (the core model: ``core``, ``sched``, ``fabric``, ``steering``,
``isa``) for the three classic leaks: wall-clock reads, process-global
randomness, and hashing over unordered views.  Environment reads are
additionally confined to the declared config modules, and the files in
``[scopes] canonical_json`` (whose JSON is compared, hashed or
cache-keyed) must serialize through the canonical encoder (DET005).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

#: wall-clock functions of the ``time`` module.
_CLOCKS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}

#: ``datetime`` constructors that read the wall clock.
_DATETIME_NOW = {"now", "utcnow", "today"}

#: module-level ``random`` functions sharing the hidden global RNG.
_SEEDED_FACTORIES = {"Random", "SystemRandom"}

_DICT_VIEWS = {"keys", "values", "items"}

#: hashing entry points DET003 inspects the arguments of.
_HASHLIB_ALGOS = {
    "md5",
    "sha1",
    "sha224",
    "sha256",
    "sha384",
    "sha512",
    "blake2b",
    "blake2s",
    "new",
}


def _in_scope(ctx: FileContext) -> bool:
    return ctx.config.in_scope(ctx.module_path, ctx.config.determinism_scope)


def _from_imports(tree: ast.Module, module: str) -> set[str]:
    """Names bound by ``from <module> import ...`` anywhere in the file."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            out.update(alias.asname or alias.name for alias in node.names)
    return out


@register
class WallClockRead(Rule):
    id = "DET001"
    family = "determinism"
    summary = "wall-clock read in the deterministic core"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        time_names = _from_imports(ctx.tree, "time") & _CLOCKS
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            clocked = None
            if isinstance(func, ast.Attribute):
                recv = func.value
                if isinstance(recv, ast.Name) and recv.id == "time" and func.attr in _CLOCKS:
                    clocked = f"time.{func.attr}"
                elif func.attr in _DATETIME_NOW and (
                    (isinstance(recv, ast.Name) and recv.id == "datetime")
                    or (isinstance(recv, ast.Attribute) and recv.attr == "datetime")
                ):
                    clocked = f"datetime.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in time_names:
                clocked = func.id
            if clocked is not None:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{clocked}() makes results time-dependent; wall-clock "
                    "belongs in the telemetry/spans layer, not the core "
                    "model",
                )


@register
class UnseededRandom(Rule):
    id = "DET002"
    family = "determinism"
    summary = "process-global random used instead of a seeded instance"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        loose = _from_imports(ctx.tree, "random") - _SEEDED_FACTORIES
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            bad = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr not in _SEEDED_FACTORIES
            ):
                bad = f"random.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in loose:
                bad = func.id
            if bad is not None:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{bad}() draws from the hidden process-global RNG; "
                    "construct random.Random(seed) with an explicit seed "
                    "parameter instead",
                )


def _contains_unsorted_view(tree: ast.expr) -> ast.AST | None:
    """An unsorted ``.keys()/.values()/.items()`` call inside ``tree``."""

    def visit(node: ast.AST, under_sorted: bool) -> ast.AST | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("sorted", "frozenset", "set", "sum", "min", "max")
        ):
            under_sorted = True  # order-insensitive consumers launder the view
        if (
            not under_sorted
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
            and not node.args
        ):
            return node
        for child in ast.iter_child_nodes(node):
            hit = visit(child, under_sorted)
            if hit is not None:
                return hit
        return None

    return visit(tree, False)


@register
class DictOrderHashing(Rule):
    id = "DET003"
    family = "determinism"
    summary = "hashing over an unsorted dict view"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_hash = isinstance(func, ast.Name) and func.id == "hash"
            is_hashlib = (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "hashlib"
                and func.attr in _HASHLIB_ALGOS
            )
            if not (is_hash or is_hashlib):
                continue
            for arg in node.args:
                view = _contains_unsorted_view(arg)
                if view is not None:
                    yield ctx.finding(
                        self.id,
                        view,
                        "hashing over an unsorted dict view bakes insertion "
                        "order into the digest; wrap the view in sorted()",
                    )


def _is_json_dump_call(node: ast.Call, loose_names: set[str]) -> str | None:
    """``json.dumps``/``json.dump`` spelling used by a call, if any."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in ("dumps", "dump")
        and isinstance(func.value, ast.Name)
        and func.value.id == "json"
    ):
        return f"json.{func.attr}"
    if isinstance(func, ast.Name) and func.id in loose_names:
        return func.id
    return None


def _contains_to_dict_call(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "to_dict"
        ):
            return True
    return False


@register
class NonCanonicalJson(Rule):
    id = "DET005"
    family = "determinism"
    summary = "raw json.dumps where the canonical encoder is required"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Two triggers, independent of each other:

        * inside ``scopes.canonical_json`` (golden corpus, result cache,
          run store, verify subsystem, CLI result output) **any**
          ``json.dumps``/``json.dump`` fires — these byte streams are
          compared, hashed or cache-keyed, so they must come from
          :func:`repro.utils.canonical.canonical_dumps` (sorted keys,
          NaN rejection, fixed separators);
        * anywhere in the tree, dumping an expression that contains a
          ``.to_dict()`` call fires — a result record serialized with
          interpreter-dependent key order or NaN passthrough silently
          breaks golden comparison and content-keyed caching.
        """
        in_scope = ctx.config.in_scope(
            ctx.module_path, ctx.config.canonical_json_scope
        )
        loose = _from_imports(ctx.tree, "json") & {"dumps", "dump"}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            spelling = _is_json_dump_call(node, loose)
            if spelling is None:
                continue
            if in_scope:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{spelling}() in a canonical-JSON scope; use "
                    "repro.utils.canonical.canonical_dumps so the byte "
                    "stream is stable (sorted keys, NaN rejected, fixed "
                    "separators)",
                )
            elif any(_contains_to_dict_call(arg) for arg in node.args):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{spelling}() over a .to_dict() record; result records "
                    "are golden-compared and cache-keyed byte-for-byte — "
                    "serialize them with canonical_dumps instead",
                )


@register
class EnvRead(Rule):
    id = "DET004"
    family = "determinism"
    summary = "os.environ read outside the config layer"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx) or ctx.config.is_config_module(ctx.module_path):
            return
        for node in ast.walk(ctx.tree):
            hit = None
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
            ):
                hit = "os.environ"
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "getenv"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "os"
            ):
                hit = "os.getenv"
            if hit is not None:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{hit} read in the core model hides an input from the "
                    "content key; route it through the declared config "
                    "modules (scopes.config_modules) instead",
                )
