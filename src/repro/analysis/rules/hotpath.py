"""Hot-path rules (``HOT``): no allocation surprises in per-cycle code.

The configured hot zones (``[hotzones]`` in ``analysis/layers.toml``)
name the functions executed every simulated cycle — the fast-path cycle
loop, the wake-up/select kernel, the RUU, the availability cache and the
steering per-cycle path.  Inside them, constructs that allocate on every
call are findings; code inside a ``raise`` statement is exempt (error
paths are cold by definition).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_CONTAINER_BUILTINS = {"dict", "list", "set"}

#: receiver spellings the telemetry-guard rule recognises.
_TELEMETRY_NAMES = {"tel", "telemetry", "_telemetry"}


def _iter_hot_nodes(ctx: FileContext) -> Iterable[ast.AST]:
    for fn in ctx.hot_function_nodes():
        yield from ast.walk(fn)


@register
class HotComprehension(Rule):
    id = "HOT001"
    family = "hot-path"
    summary = "comprehension or generator expression in a hot zone"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in _iter_hot_nodes(ctx):
            if isinstance(node, _COMPREHENSIONS) and not ctx.in_raise(node):
                kind = type(node).__name__
                yield ctx.finding(
                    self.id,
                    node,
                    f"{kind} allocates on every call in a hot zone; hoist "
                    "it, reuse a scratch container, or defer to a snapshot "
                    "path",
                )


@register
class HotContainerCall(Rule):
    id = "HOT002"
    family = "hot-path"
    summary = "dict()/list()/set() constructor call in a hot zone"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in _iter_hot_nodes(ctx):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _CONTAINER_BUILTINS
                and not ctx.in_raise(node)
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{node.func.id}() allocates a fresh container each "
                    "cycle; reuse a preallocated one (clear()/update()) or "
                    "hoist it out of the per-cycle path",
                )


@register
class HotFString(Rule):
    id = "HOT003"
    family = "hot-path"
    summary = "f-string formatting in a hot zone"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in _iter_hot_nodes(ctx):
            if isinstance(node, ast.JoinedStr) and not ctx.in_raise(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "f-string builds a new str every cycle; format lazily "
                    "(rendering/debug helpers) or move it behind the "
                    "telemetry guard",
                )


@register
class HotLambda(Rule):
    id = "HOT004"
    family = "hot-path"
    summary = "lambda created in a hot zone"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in _iter_hot_nodes(ctx):
            if isinstance(node, ast.Lambda) and not ctx.in_raise(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "lambda allocates a function object per call; hoist it "
                    "to module scope or a bound method",
                )


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` decorator of a class, if present."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return dec
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return dec
    return None


@register
class HotDataclassSlots(Rule):
    id = "HOT005"
    family = "hot-path"
    summary = "dataclass without slots=True in a hot-zone file"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.config.hot_functions(ctx.module_path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            dec = _dataclass_decorator(node)
            if dec is None:
                continue
            has_slots = isinstance(dec, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in dec.keywords
            )
            if not has_slots:
                yield ctx.finding(
                    self.id,
                    node,
                    f"dataclass {node.name} in a hot-zone file lacks "
                    "slots=True; instances pay a per-object __dict__",
                )


def _telemetry_symbol(call: ast.Call) -> str | None:
    """The telemetry receiver symbol of a call, if it looks like one.

    Matches ``tel.on_cycle(...)``, ``telemetry.foo(...)`` and
    ``self._telemetry.foo(...)`` — returns the symbol a guard must test
    (``tel``, ``telemetry``, ``_telemetry``).
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    recv = func.value
    if isinstance(recv, ast.Name) and recv.id in _TELEMETRY_NAMES:
        return recv.id
    if isinstance(recv, ast.Attribute) and recv.attr in _TELEMETRY_NAMES:
        return recv.attr
    return None


def _mentions(tree: ast.expr, symbol: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == symbol:
            return True
        if isinstance(node, ast.Attribute) and node.attr == symbol:
            return True
    return False


@register
class HotUnguardedTelemetry(Rule):
    id = "HOT006"
    family = "hot-path"
    summary = "telemetry call in a hot zone without a truthiness guard"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in _iter_hot_nodes(ctx):
            if not isinstance(node, ast.Call):
                continue
            symbol = _telemetry_symbol(node)
            if symbol is None:
                continue
            guarded = any(
                isinstance(a, (ast.If, ast.IfExp)) and _mentions(a.test, symbol)
                for a in ctx.ancestors(node)
            )
            if not guarded:
                yield ctx.finding(
                    self.id,
                    node,
                    f"telemetry call on {symbol!r} must sit behind the "
                    "one-truthiness-check pattern "
                    "(tel = self._telemetry; if tel is not None: ...)",
                )


@register
class HotPerLaneLoop(Rule):
    id = "HOT007"
    family = "hot-path"
    summary = "python-level per-lane loop in a vectorized-kernel hot zone"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.config.in_scope(
            ctx.module_path, ctx.config.vector_kernel_scope
        ):
            return
        for node in _iter_hot_nodes(ctx):
            if isinstance(
                node, (ast.For, ast.AsyncFor, ast.While)
            ) and not ctx.in_raise(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "explicit loop in a vectorized-kernel hot zone iterates "
                    "lanes or rows in the interpreter; express it as a "
                    "whole-array operation (the pure-Python fallback bank "
                    "is the only sanctioned per-row path)",
                )
