"""Concurrency rules (``CON``): the serving layer stays thread-safe.

The HTTP API is a threaded server sharing one SQLite connection, one
result cache and one job queue; the batch engine shares module state
with worker processes.  Within the ``[scopes] concurrency`` table
(``serving/`` and ``evaluation/batch.py``) these rules enforce the
store's locking discipline, guard shared module state, and keep
threading primitives out of per-request paths.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

#: attribute names that identify a SQLite connection/cursor receiver.
_SQLITE_RECEIVERS = {"_conn", "conn", "_cursor", "cursor", "_db", "db"}

#: connection methods that touch the database.
_SQLITE_METHODS = {
    "execute",
    "executemany",
    "executescript",
    "commit",
    "rollback",
    "fetchone",
    "fetchall",
}

#: threading primitives that must not be built per request.
_PRIMITIVES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
}

#: container methods that mutate in place.
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "__setitem__",
}


def _in_scope(ctx: FileContext) -> bool:
    return ctx.config.in_scope(ctx.module_path, ctx.config.concurrency_scope)


def _mentions_lock(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and "lock" in name.lower():
            return True
    return False


def _under_lock(ctx: FileContext, node: ast.AST) -> bool:
    """Whether ``node`` sits inside ``with <something lock-ish>:``."""
    return any(
        isinstance(a, ast.With)
        and any(_mentions_lock(item.context_expr) for item in a.items)
        for a in ctx.ancestors(node)
    )


#: with-scopes that carry the store's connection discipline: ``_read()``
#: is an autocommit WAL snapshot, ``_write()`` a lock-held short
#: transaction (see RunStore).
_SCOPE_METHODS = {"_read", "_write"}

#: functions allowed to touch a connection bare: the scope
#: implementations themselves plus connection setup.
_SCOPE_IMPLEMENTATIONS = {"_read", "_write", "_connect", "_connection"}


def _under_store_scope(ctx: FileContext, node: ast.AST) -> bool:
    """Inside ``with self._read() as conn:`` / ``with self._write()``."""
    for a in ctx.ancestors(node):
        if not isinstance(a, ast.With):
            continue
        for item in a.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _SCOPE_METHODS
            ):
                return True
    return False


def _enclosing_function(ctx: FileContext, node: ast.AST):
    return next(
        (
            a
            for a in ctx.ancestors(node)
            if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
        ),
        None,
    )


@register
class SqliteOutsideLock(Rule):
    id = "CON001"
    family = "concurrency"
    summary = "SQLite connection used outside the store's scopes"
    #: v2: the WAL store's `with self._read()/_write()` scopes satisfy
    #: the discipline alongside a bare `with self._lock:`
    version = 2

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in _SQLITE_METHODS
            ):
                continue
            recv = func.value
            recv_name = None
            if isinstance(recv, ast.Attribute):
                recv_name = recv.attr
            elif isinstance(recv, ast.Name):
                recv_name = recv.id
            if recv_name not in _SQLITE_RECEIVERS:
                continue
            if _under_lock(ctx, node) or _under_store_scope(ctx, node):
                continue
            owner = _enclosing_function(ctx, node)
            if owner is not None and owner.name in _SCOPE_IMPLEMENTATIONS:
                continue  # the scope machinery itself
            yield ctx.finding(
                self.id,
                node,
                f"{recv_name}.{func.attr}() outside 'with self._lock:' or "
                "the store's _read()/_write() scopes races other "
                "threads/processes; use the store's scoped methods",
            )


def _module_mutables(tree: ast.Module) -> dict[str, int]:
    """Module-level names bound to mutable containers -> definition line."""
    out: dict[str, int] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        is_mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("dict", "list", "set")
        )
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt.lineno
    return out


@register
class UnlockedModuleState(Rule):
    id = "CON002"
    family = "concurrency"
    summary = "shared module state mutated without a lock"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        mutables = _module_mutables(ctx.tree)
        # names rebound via `global` inside functions are shared state too
        globals_declared: set[str] = {
            name
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        shared = set(mutables) | globals_declared
        if not shared:
            return
        for node in ast.walk(ctx.tree):
            hit = None
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutables
            ):
                hit = f"{node.func.value.id}.{node.func.attr}()"
            elif (
                isinstance(node, (ast.Assign, ast.AugAssign))
                and self._assigns_global(node, globals_declared, ctx)
            ):
                hit = f"reassignment of global {self._assigns_global(node, globals_declared, ctx)!r}"
            elif (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id in mutables
                and isinstance(node.ctx, (ast.Store, ast.Del))
            ):
                hit = f"{node.value.id}[...] assignment"
            if hit is None:
                continue
            # only mutations from function bodies race; module top-level
            # runs once at import under the import lock
            in_function = any(
                isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                for a in ctx.ancestors(node)
            )
            if in_function and not _under_lock(ctx, node):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{hit} mutates shared module state without holding a "
                    "lock; guard it with a module-level threading.Lock",
                )

    @staticmethod
    def _assigns_global(node: ast.AST, declared: set[str], ctx: FileContext) -> str | None:
        if not declared:
            return None
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared:
                # only inside a function that declares it global
                for a in ctx.ancestors(node):
                    if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if any(
                            isinstance(s, ast.Global) and target.id in s.names
                            for s in ast.walk(a)
                        ):
                            return target.id
                        break
        return None


@register
class PerRequestPrimitive(Rule):
    id = "CON003"
    family = "concurrency"
    summary = "threading primitive constructed per call"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _PRIMITIVES
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "threading"
            ):
                continue
            owner = next(
                (
                    a
                    for a in ctx.ancestors(node)
                    if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                ),
                None,
            )
            if owner is not None and owner.name not in ("__init__", "__new__"):
                yield ctx.finding(
                    self.id,
                    node,
                    f"threading.{node.func.attr}() built inside "
                    f"{owner.name}() creates a fresh primitive per call — "
                    "it synchronises nothing; create it once in __init__ "
                    "or at module scope",
                )


#: the one module allowed to open SQLite connections.
_STORE_MODULE = "repro/serving/store.py"


@register
class RawSqliteConnect(Rule):
    id = "CON004"
    family = "concurrency"
    summary = "raw sqlite3.connect outside the run store"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # repo-wide (not just the concurrency scope): a stray connection
        # anywhere bypasses the store's WAL/busy-timeout/fork discipline
        if ctx.module_path.endswith(_STORE_MODULE):
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "connect"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "sqlite3"
            ):
                continue
            yield ctx.finding(
                self.id,
                node,
                "sqlite3.connect() outside repro/serving/store.py bypasses "
                "the RunStore's WAL + busy-timeout + per-process connection "
                "discipline; go through RunStore instead",
            )


@register
class ModuleLevelSocket(Rule):
    id = "CON005"
    family = "concurrency"
    summary = "socket created at module import time"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # serving layer only: a socket bound at import time leaks into
        # every forked worker and breaks the supervisor's socket handoff
        if "repro/serving" not in ctx.module_path:
            return
        for stmt in ast.walk(ctx.tree):
            if not (
                isinstance(stmt, ast.Call)
                and isinstance(stmt.func, ast.Attribute)
                and stmt.func.attr in ("socket", "create_connection",
                                       "create_server")
                and isinstance(stmt.func.value, ast.Name)
                and stmt.func.value.id == "socket"
            ):
                continue
            if _enclosing_function(ctx, stmt) is not None:
                continue  # created per call/worker, not at import
            yield ctx.finding(
                self.id,
                stmt,
                "socket created at module scope runs at import time and "
                "is shared by every thread and forked worker; create "
                "sockets inside the supervisor/server functions that own "
                "their lifecycle",
            )
