"""Registry entries for the whole-program (call-graph) rules.

These rules are *driven by the graph phase of the engine*, not by the
per-file ``check`` walk — registering them here gives them stable ids,
versions folded into the cache fingerprint, ``--rules`` selectability and
a place in the catalog.  ``check`` is therefore a no-op; the findings are
produced by :class:`repro.analysis.dataflow.GraphAnalysis`.

The interprocedural HOT findings reuse the HOT001–HOT007 ids (an
allocation is an allocation, whether the per-file pass or the graph pass
saw it); only the determinism-taint and cross-process rules are new ids.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register


class GraphRule(Rule):
    """Marker base: produced by the engine's graph phase."""

    graph = True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()


@register
class TaintedStateRule(GraphRule):
    id = "DET006"
    family = "determinism"
    summary = (
        "nondeterministic value (clock/RNG/env/id), laundered through at "
        "least one call, stored into simulation state"
    )
    version = 1


@register
class TaintedCanonicalSinkRule(GraphRule):
    id = "DET007"
    family = "determinism"
    summary = "nondeterministic value reaches a canonical-JSON sink"
    version = 1


@register
class CrossProcessReadRule(GraphRule):
    id = "CON006"
    family = "concurrency"
    summary = (
        "module state read in one process domain but mutated in another "
        "without a RunStore scope or explicit queue"
    )
    version = 1


@register
class UnattributedMutationRule(GraphRule):
    id = "CON007"
    family = "concurrency"
    summary = (
        "module state mutated by a function no declared process role "
        "reaches (ownership unprovable)"
    )
    version = 1
