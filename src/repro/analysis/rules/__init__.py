"""Rule registry and the per-file context every rule checks against.

A rule is a small stateless object with an ``id`` (``HOT002``), a
``family`` (``hot-path``), a one-line ``summary`` for the catalog, and a
``check(ctx)`` generator yielding :class:`Finding` records.  Importing
this package registers the four built-in families; third parties (or
tests) can register more with :func:`register`.

Bumping a rule's ``version`` invalidates cached per-file results for the
whole tree (the engine folds every ``(id, version)`` pair into its cache
fingerprint), so a sharpened rule re-examines files whose content did
not change.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding

__all__ = [
    "FileContext",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "iter_functions",
    "register",
]


@dataclass(slots=True)
class FileContext:
    """Everything a rule may ask about one source file."""

    #: path relative to the analysis root (``repro/sched/ruu.py``) —
    #: what the config's hot zones, scopes and layers are keyed by.
    module_path: str
    #: repo-relative path used in findings (``src/repro/sched/ruu.py``).
    display_path: str
    source: str
    tree: ast.Module
    config: AnalysisConfig
    _parents: dict[ast.AST, ast.AST] | None = field(default=None, repr=False)
    _hot_nodes: tuple[ast.AST, ...] | None = field(default=None, repr=False)

    # ------------------------------------------------------------ structure
    def parent_map(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parent_map()
        while node in parents:
            node = parents[node]
            yield node

    # ------------------------------------------------------------ hot zones
    def hot_function_nodes(self) -> tuple[ast.AST, ...]:
        """Function definitions the config marks as per-cycle code."""
        if self._hot_nodes is None:
            spec = self.config.hot_functions(self.module_path)
            if not spec:
                self._hot_nodes = ()
            elif "*" in spec:
                self._hot_nodes = tuple(
                    node for _, node in iter_functions(self.tree)
                )
            else:
                wanted = set(spec)
                self._hot_nodes = tuple(
                    node
                    for qualname, node in iter_functions(self.tree)
                    if qualname in wanted
                )
        return self._hot_nodes

    def in_hot_zone(self, node: ast.AST) -> bool:
        hot = self.hot_function_nodes()
        if not hot:
            return False
        hot_set = set(hot)
        if node in hot_set:
            return True
        return any(a in hot_set for a in self.ancestors(node))

    def in_raise(self, node: ast.AST) -> bool:
        """Whether ``node`` sits inside a ``raise`` (error paths are cold)."""
        return any(isinstance(a, ast.Raise) for a in self.ancestors(node))

    # ------------------------------------------------------------- findings
    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule_id,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield every function with its class-qualified name.

    ``Processor.step`` for methods, ``helper`` for module functions,
    ``Outer.Inner.method`` for nesting; functions nested inside other
    functions keep the enclosing function's prefix.
    """

    def visit(node: ast.AST, prefix: str) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


class Rule:
    """Base class: subclass, set the metadata, implement ``check``."""

    id: str = ""
    family: str = ""
    summary: str = ""
    #: bump to invalidate cached results after changing the rule's logic.
    version: int = 1

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


#: every registered rule, by id.
RULE_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to the registry."""
    rule = cls()
    if not rule.id or not rule.family:
        raise ValueError(f"rule {cls.__name__} must define id and family")
    if rule.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULE_REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules in id order (deterministic check order)."""
    return [RULE_REGISTRY[rule_id] for rule_id in sorted(RULE_REGISTRY)]


def registry_fingerprint() -> tuple[tuple[str, int], ...]:
    """(id, version) pairs folded into the engine's cache fingerprint."""
    return tuple((r.id, r.version) for r in all_rules())


# populate the registry ----------------------------------------------------
from repro.analysis.rules import (  # noqa: E402  (registration side effects)
    concurrency,
    determinism,
    hotpath,
    interprocedural,
    layering,
    observability,
)

__all__ += ["registry_fingerprint"]
