"""Observability rules (``OBS``): one funnel for operational output.

The serving and telemetry layers emit structured, trace-correlated
events through :mod:`repro.telemetry.events`; stray ``print()`` calls or
direct :mod:`logging` usage in those layers bypass the event log's
canonical-JSON lines, ring buffer and ``GET /api/logs`` endpoint — the
exact ad-hoc output PR 9 removed.  ``OBS001`` pins that down: within
``repro/serving`` and ``repro/telemetry``, only the modules declared in
``[scopes] event_log_modules`` (the event log itself) may talk to
``print``/``logging`` directly.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register

#: layers whose operational output must flow through the event log.
_SCOPED_PREFIXES = ("repro/serving", "repro/telemetry")


def _in_scope(ctx: FileContext) -> bool:
    if ctx.module_path in ctx.config.event_log_modules:
        return False
    return ctx.config.in_scope(ctx.module_path, _SCOPED_PREFIXES)


@register
class AdHocOutput(Rule):
    id = "OBS001"
    family = "observability"
    summary = "print()/raw logging outside the event-log module"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield ctx.finding(
                    self.id,
                    node,
                    "print() in the serving/telemetry layers bypasses the "
                    "structured event log; emit through an EventLog "
                    "(repro.telemetry.events) or a caller-supplied log "
                    "callback instead",
                )
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "logging"
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    f"logging.{func.attr}() outside the declared event-log "
                    "module mixes an uncorrelated text stream into the "
                    "canonical-JSON event pipeline; route through "
                    "repro.telemetry.events.EventLog",
                )
