"""Layering rules (``LAY``): the import DAG stays a DAG.

``analysis/layers.toml`` declares, per layer (top-level package or
module under ``repro``), which layers it may import.  ``LAY001`` flags
any import edge missing from the table — including function-local
imports, which is where back-edges usually hide — and ``LAY002`` flags
modules whose layer the table does not know about, so a new top-level
package must be placed into the DAG before it can land.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules import FileContext, Rule, register


def _import_targets(node: ast.AST) -> list[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        # relative imports stay inside the package -> same layer, allowed
        if node.level and node.level > 0:
            return []
        return [node.module] if node.module else []
    return []


@register
class IllegalImportEdge(Rule):
    id = "LAY001"
    family = "layering"
    summary = "import edge not allowed by the layer DAG"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        src_layer = ctx.config.layer_of(ctx.module_path)
        if src_layer is None or src_layer not in ctx.config.layers:
            return  # LAY002 reports the undeclared layer once
        for node in ast.walk(ctx.tree):
            for dotted in _import_targets(node):
                dst_layer = ctx.config.layer_of_import(dotted)
                if dst_layer is None:
                    continue  # stdlib / external
                if not ctx.config.edge_allowed(src_layer, dst_layer):
                    detail = (
                        "an undeclared layer"
                        if dst_layer not in ctx.config.layers
                        else f"not in {src_layer}'s allowed imports"
                    )
                    yield ctx.finding(
                        self.id,
                        node,
                        f"layer {src_layer!r} imports {dotted} "
                        f"({dst_layer!r} is {detail}); fix the dependency "
                        "direction or declare the edge in "
                        "analysis/layers.toml",
                    )


@register
class UndeclaredLayer(Rule):
    id = "LAY002"
    family = "layering"
    summary = "module outside every declared layer"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        src_layer = ctx.config.layer_of(ctx.module_path)
        if src_layer is None:
            return  # not under the analysed package at all
        if src_layer not in ctx.config.layers:
            yield Finding(
                rule=self.id,
                path=ctx.display_path,
                line=1,
                col=0,
                message=(
                    f"layer {src_layer!r} is not declared in "
                    "analysis/layers.toml; add it to the [layers] table "
                    "with its allowed imports"
                ),
            )
