"""Inline suppression comments: ``# repro: allow[RULE-ID]``.

A suppression names the rule(s) it silences — ``# repro: allow[HOT002]``
or ``# repro: allow[HOT001,DET001]`` — and applies to:

* the line it sits on (trailing-comment style), or — when the comment
  has a line of its own — the line directly below it (comment-above
  style; a *trailing* comment never leaks onto the next line);
* the entire definition, when it sits on a ``def``/``class`` header, one
  of its decorator lines, or anywhere in the contiguous comment block
  directly above the header — the idiom for "every telemetry call in
  this function is justified" without one comment per call, with room
  for a multi-line justification.

Blanket suppression is deliberately impossible: there is no bare
``allow`` form and no ``allow[*]``; every silenced finding names the
rule it silences, so ``grep 'repro: allow'`` is a complete audit.

The sibling annotation ``# repro: cold-call -- reason`` marks one *call
site* (the line it sits on, or the line below for a comment-only line)
as cold for the whole-program hot-zone reachability pass: the edge it
annotates does not propagate hot-path obligations.  The reason is
mandatory — an annotation without one is reported as ``ENG002`` rather
than silently ignored.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize

__all__ = [
    "SuppressionIndex",
    "collect_suppression_comments",
    "collect_cold_call_comments",
]

#: the comment grammar; ids are comma-separated rule names.
_PATTERN = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s-]+)\]")

#: cold-call edge annotations: ``# repro: cold-call -- reason``.
_COLD_PATTERN = re.compile(r"#\s*repro:\s*cold-call(?:\s*--\s*(\S.*))?")


def collect_cold_call_comments(
    source: str,
) -> tuple[dict[int, str], list[int]]:
    """Scan for cold-call annotations; returns (line -> reason, malformed).

    A comment-*only* annotation applies to the next *code* line below it
    (skipping blank lines and continuation comment lines, so a reason may
    wrap onto several comment lines); a trailing annotation covers its
    own line.  Both are normalised here to the line of the *call* they
    annotate.  Annotations missing the mandatory ``-- reason`` are
    returned as malformed line numbers for the engine to report (ENG002).
    """
    reasons: dict[int, str] = {}
    malformed: list[int] = []
    lines = source.splitlines()

    def next_code_line(after: int) -> int:
        for offset in range(after, len(lines)):
            stripped = lines[offset].strip()
            if stripped and not stripped.startswith("#"):
                return offset + 1  # 1-indexed
        return after + 1

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _COLD_PATTERN.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            comment_only = tok.line[: tok.start[1]].strip() == ""
            target = next_code_line(line) if comment_only else line
            reason = match.group(1)
            if reason is None or not reason.strip():
                malformed.append(line)
            else:
                reasons[target] = reason.strip()
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        pass
    return reasons, malformed


def collect_suppression_comments(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[int]]:
    """Scan comments; returns (line -> suppressed rule ids, comment lines).

    The second element holds every comment-*only* line (suppressing or
    not): those are the lines whose suppressions apply one line down and
    through which scoped lookup walks a contiguous justification block
    above a definition header.  Trailing comments only ever cover their
    own line.
    """
    out: dict[int, frozenset[str]] = {}
    comment_lines: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line = tok.start[0]
            if tok.line[: tok.start[1]].strip() == "":
                comment_lines.add(line)
            match = _PATTERN.search(tok.string)
            if match is None:
                continue
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                out[line] = out.get(line, frozenset()) | ids
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        # the engine reports unparsable files through its own channel
        pass
    return out, frozenset(comment_lines)


class SuppressionIndex:
    """Answers "is rule R suppressed at line L?" for one file."""

    __slots__ = ("_by_line", "_own_line", "_scoped")

    def __init__(self, source: str, tree: ast.AST | None) -> None:
        self._by_line, self._own_line = collect_suppression_comments(source)
        comment_lines = self._own_line
        #: (first line, last line, rule ids) per suppressed definition.
        self._scoped: list[tuple[int, int, frozenset[str]]] = []
        if tree is not None:
            for node in ast.walk(tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                header_lines = [node.lineno]
                header_lines.extend(d.lineno for d in node.decorator_list)
                ids: frozenset[str] = frozenset()
                for line in header_lines:
                    ids |= self._by_line.get(line, frozenset())
                # the contiguous comment block above the header (or above
                # the first decorator) — multi-line justifications welcome
                above = min(header_lines) - 1
                while above in comment_lines:
                    ids |= self._by_line.get(above, frozenset())
                    above -= 1
                if ids:
                    start = min(header_lines)
                    end = node.end_lineno or node.lineno
                    self._scoped.append((start, end, ids))

    def is_suppressed(self, rule: str, line: int) -> bool:
        direct = self._by_line.get(line, frozenset())
        if line - 1 in self._own_line:  # comment-above, not trailing
            direct = direct | self._by_line.get(line - 1, frozenset())
        if rule in direct:
            return True
        return any(
            start <= line <= end and rule in ids
            for start, end, ids in self._scoped
        )

    def __bool__(self) -> bool:
        return bool(self._by_line)
