"""The finding record shared by every rule, reporter and the baseline."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repository-relative with forward slashes, so findings
    (and therefore baseline entries and cache blobs) are identical across
    machines and operating systems.

    Interprocedural findings additionally carry ``chain``: the call path
    that produced them, as ``(node id, line)`` hops from the root (hot
    zone or taint source) down to the function the finding lives in.
    ``repro lint --explain`` renders it; it is excluded from the
    fingerprint so chain refinements never churn the baseline.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    chain: tuple[tuple[str, int], ...] = field(default=(), compare=False)

    def fingerprint(self) -> str:
        """Stable identity used for baseline matching.

        Deliberately excludes the column: wrapping a line must not churn
        the baseline.  The line number *is* included — the baseline is a
        ratchet regenerated with ``repro lint --update-baseline``, not a
        permanent suppression, so drift is expected to surface.
        """
        return f"{self.path}:{self.line}:{self.rule}:{self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        record = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.chain:
            record["chain"] = [[node, line] for node, line in self.chain]
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Finding":
        return cls(
            rule=str(record["rule"]),
            path=str(record["path"]),
            line=int(record["line"]),
            col=int(record.get("col", 0)),
            message=str(record["message"]),
            chain=tuple(
                (str(node), int(line))
                for node, line in record.get("chain", [])
            ),
        )
