"""Static analysis for the simulator's own invariants (``repro lint``).

PRs 1-4 made the simulator fast, deterministic and concurrently served —
but the properties that keep it that way (no allocation in the cycle
loop, no wall-clock or unseeded randomness in the core model, SQLite only
under the store's lock, a strict import DAG) lived only in reviewer
memory.  This package is the codebase's counterpart of the paper's
configuration-error metric: a *cheap checker* that re-scores the whole
tree against those requirements on every run.

Layout:

* :mod:`repro.analysis.findings` — the :class:`Finding` record and its
  stable fingerprint;
* :mod:`repro.analysis.config` — the checked-in ``analysis/layers.toml``
  table (import DAG, hot zones, rule scopes);
* :mod:`repro.analysis.rules` — the rule registry and the four families
  (hot-path ``HOT``, determinism ``DET``, concurrency ``CON``, layering
  ``LAY``);
* :mod:`repro.analysis.engine` — one-process tree walk with per-file
  result caching by content hash (the ``ResultCache``/:func:`job_key`
  idiom), inline ``# repro: allow[RULE]`` suppressions;
* :mod:`repro.analysis.baseline` — the committed findings baseline that
  lets the gate land green and ratchet down;
* :mod:`repro.analysis.report` — human-readable and JSON reporters;
* :mod:`repro.analysis.cli` — the ``repro lint`` subcommand.

The engine is stdlib-only (:mod:`ast` + :mod:`tokenize`), matching the
repository rule that the core tree never grows third-party dependencies.
"""

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.engine import AnalysisEngine, analyze_paths
from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_REGISTRY, all_rules

__all__ = [
    "AnalysisConfig",
    "AnalysisEngine",
    "Finding",
    "RULE_REGISTRY",
    "all_rules",
    "analyze_paths",
    "load_config",
]
