"""The checked-in analysis configuration (``analysis/layers.toml``).

One TOML table drives everything the rules need to know about the tree:

``package``
    Name of the root package the layer map describes (``"repro"``).
``[layers]``
    The allowed import DAG: ``layer = [layers it may import]``.  A layer
    is a top-level package (``sched``, ``fabric``, ...) or a top-level
    module (``cli``, ``errors``).  Importing inside one's own layer is
    always allowed; any edge not in the table is a ``LAY001`` finding,
    and a module whose layer is missing from the table is ``LAY002``.
``[hotzones]``
    Per-cycle code: ``"repro/sched/ruu.py" = ["RegisterUpdateUnit.tick"]``
    maps a root-relative file to the qualified functions the hot-path
    rules police; ``["*"]`` marks every function in the file hot.
``[scopes]``
    Root-relative path prefixes bounding the determinism and concurrency
    families, ``config_modules`` — the only places allowed to read
    ``os.environ`` — and ``vector_kernels``, the files whose hot zones
    the ``HOT007`` no-per-lane-loops rule polices.

Parsed with :mod:`tomllib` on Python ≥ 3.11 and a minimal built-in
reader (tables, string keys, strings and string lists — exactly the
subset the schema uses) elsewhere, keeping the engine stdlib-only on
every supported interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback
    tomllib = None

from repro.errors import ConfigurationError

__all__ = ["AnalysisConfig", "load_config", "DEFAULT_CONFIG_PATH"]

#: repo-relative location of the committed configuration.
DEFAULT_CONFIG_PATH = Path("analysis") / "layers.toml"


def _parse_minimal_toml(text: str) -> dict:
    """Restricted TOML reader for the layers schema (3.10 fallback).

    Supports ``[table]`` headers, bare or double-quoted keys, and values
    that are double-quoted strings or (possibly multi-line) lists of
    double-quoted strings.  Anything else is a configuration error.
    """
    root: dict = {}
    table = root
    pending_key: str | None = None
    pending_items: list[str] | None = None

    def parse_list_items(chunk: str) -> list[str]:
        items: list[str] = []
        for part in chunk.split(","):
            part = part.strip()
            if not part:
                continue
            if not (part.startswith('"') and part.endswith('"')):
                raise ConfigurationError(
                    f"layers.toml fallback parser: unsupported list item {part!r}"
                )
            items.append(part[1:-1])
        return items

    for raw in text.splitlines():
        line = raw.strip()
        # strip comments, but never inside a quoted string
        if "#" in line:
            out, in_str = [], False
            for ch in line:
                if ch == '"':
                    in_str = not in_str
                if ch == "#" and not in_str:
                    break
                out.append(ch)
            line = "".join(out).strip()
        if not line:
            continue
        if pending_key is not None:
            closing = line.endswith("]")
            chunk = line[:-1] if closing else line
            pending_items.extend(parse_list_items(chunk))
            if closing:
                table[pending_key] = pending_items
                pending_key, pending_items = None, None
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            table = root.setdefault(name, {})
            continue
        if "=" not in line:
            raise ConfigurationError(
                f"layers.toml fallback parser: cannot parse line {raw!r}"
            )
        key, value = (s.strip() for s in line.split("=", 1))
        if key.startswith('"') and key.endswith('"'):
            key = key[1:-1]
        if value.startswith("[") and value.endswith("]"):
            table[key] = parse_list_items(value[1:-1])
        elif value.startswith("["):
            pending_key, pending_items = key, parse_list_items(value[1:])
        elif value.startswith('"') and value.endswith('"'):
            table[key] = value[1:-1]
        else:
            raise ConfigurationError(
                f"layers.toml fallback parser: unsupported value {value!r}"
            )
    return root


@dataclass(slots=True)
class AnalysisConfig:
    """Parsed, validated view of ``analysis/layers.toml``."""

    #: root package the layer names live under (``repro``).
    package: str = "repro"
    #: layer -> layers it may import from (its own layer is implicit).
    layers: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: root-relative file -> qualified hot functions (``["*"]`` = all).
    hotzones: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: path prefixes scoping the determinism rules.
    determinism_scope: tuple[str, ...] = ()
    #: path prefixes scoping the concurrency rules.
    concurrency_scope: tuple[str, ...] = ()
    #: modules allowed to read the process environment.
    config_modules: tuple[str, ...] = ()
    #: files whose hot zones must stay free of per-lane Python loops
    #: (the vectorized batch kernels; HOT007).
    vector_kernel_scope: tuple[str, ...] = ()
    #: files whose persisted/compared JSON must go through the canonical
    #: encoder (``repro.utils.canonical``; DET005).
    canonical_json_scope: tuple[str, ...] = ()
    #: the modules implementing the structured event log — the only files
    #: in the serving/telemetry layers allowed to use print/logging
    #: directly (OBS001).
    event_log_modules: tuple[str, ...] = ()
    #: process role -> entry-point roots ("file.py::Qual.name") for the
    #: cross-process shared-state checker (CON006/CON007).  Empty table
    #: disables the pass.
    process_roles: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: role groups sharing one OS process ("api_worker/drain_thread"):
    #: state crossing between them is thread-shared, not fork-divergent.
    shared_process: tuple[str, ...] = ()
    #: raw text the config was parsed from (cache fingerprinting).
    source_text: str = ""

    # ------------------------------------------------------------- lookups
    def layer_of(self, module_path: str) -> str | None:
        """Layer of a root-relative file path, or None outside the package.

        ``repro/sched/ruu.py`` -> ``sched``; the top-level module
        ``repro/cli.py`` -> ``cli``; the package root
        ``repro/__init__.py`` -> ``__init__``.
        """
        parts = module_path.split("/")
        if len(parts) < 2 or parts[0] != self.package:
            return None
        if len(parts) == 2:
            return parts[1][:-3] if parts[1].endswith(".py") else parts[1]
        return parts[1]

    def layer_of_import(self, dotted: str) -> str | None:
        """Layer an ``import repro.x.y`` style target belongs to."""
        parts = dotted.split(".")
        if parts[0] != self.package:
            return None
        return parts[1] if len(parts) > 1 else "__init__"

    def edge_allowed(self, src_layer: str, dst_layer: str) -> bool:
        if src_layer == dst_layer:
            return True
        allowed = self.layers.get(src_layer)
        return allowed is not None and dst_layer in allowed

    def hot_functions(self, module_path: str) -> tuple[str, ...]:
        """Hot-zone spec for a file ('' tuple when the file has none)."""
        return self.hotzones.get(module_path, ())

    def in_scope(self, module_path: str, prefixes: tuple[str, ...]) -> bool:
        return any(
            module_path == p or module_path.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    def is_config_module(self, module_path: str) -> bool:
        return module_path in self.config_modules


def _as_str_tuple(value, context: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ConfigurationError(f"{context} must be a list of strings, got {value!r}")
    return tuple(value)


def load_config(path: str | Path) -> AnalysisConfig:
    """Read and validate ``analysis/layers.toml``."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read analysis config {path}: {exc}") from exc
    if tomllib is not None:
        try:
            raw = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"invalid TOML in {path}: {exc}") from exc
    else:  # pragma: no cover - exercised only on Python 3.10
        raw = _parse_minimal_toml(text)

    package = raw.get("package", "repro")
    if not isinstance(package, str) or not package:
        raise ConfigurationError(f"{path}: 'package' must be a non-empty string")
    layers = {
        str(name): _as_str_tuple(deps, f"{path}: layers.{name}")
        for name, deps in raw.get("layers", {}).items()
    }
    for name, deps in layers.items():
        for dep in deps:
            if dep not in layers:
                raise ConfigurationError(
                    f"{path}: layer {name!r} imports undeclared layer {dep!r}"
                )
    hotzones = {
        str(file): _as_str_tuple(funcs, f"{path}: hotzones.{file}")
        for file, funcs in raw.get("hotzones", {}).items()
    }
    scopes = raw.get("scopes", {})
    process_roles = {
        str(role): _as_str_tuple(roots, f"{path}: process_roles.{role}")
        for role, roots in raw.get("process_roles", {}).items()
    }
    return AnalysisConfig(
        package=package,
        layers=layers,
        hotzones=hotzones,
        determinism_scope=_as_str_tuple(
            scopes.get("determinism", []), f"{path}: scopes.determinism"
        ),
        concurrency_scope=_as_str_tuple(
            scopes.get("concurrency", []), f"{path}: scopes.concurrency"
        ),
        config_modules=_as_str_tuple(
            scopes.get("config_modules", []), f"{path}: scopes.config_modules"
        ),
        vector_kernel_scope=_as_str_tuple(
            scopes.get("vector_kernels", []), f"{path}: scopes.vector_kernels"
        ),
        canonical_json_scope=_as_str_tuple(
            scopes.get("canonical_json", []), f"{path}: scopes.canonical_json"
        ),
        event_log_modules=_as_str_tuple(
            scopes.get("event_log_modules", []),
            f"{path}: scopes.event_log_modules",
        ),
        process_roles=process_roles,
        shared_process=_as_str_tuple(
            scopes.get("shared_process", []), f"{path}: scopes.shared_process"
        ),
        source_text=text,
    )
