"""Reporters for ``repro lint``: a human summary and a JSON document.

The JSON document is the machine interface CI consumes (uploaded as the
``lint-findings`` artifact) and the fixture tests assert against; the
human format groups findings by file with ``path:line:col RULE message``
lines that terminals and editors hyperlink.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_REGISTRY

__all__ = ["LintResult", "render_human", "render_json"]

#: JSON document schema version (2: added graph_cache_hits).
REPORT_VERSION = 2


@dataclass(slots=True)
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0
    #: files whose interprocedural findings were served from the
    #: dependency-aware graph cache.
    graph_cache_hits: int = 0

    @property
    def ok(self) -> bool:
        return not self.new


def render_human(result: LintResult) -> str:
    lines: list[str] = []
    baselined_fps = {f.fingerprint() for f in result.baselined}
    by_path: dict[str, list[Finding]] = {}
    for f in result.findings:
        by_path.setdefault(f.path, []).append(f)
    for path in sorted(by_path):
        lines.append(path)
        for f in sorted(by_path[path], key=Finding.sort_key):
            tag = " [baseline]" if f.fingerprint() in baselined_fps else ""
            lines.append(f"  {f.path}:{f.line}:{f.col}: {f.rule}{tag} {f.message}")
        lines.append("")
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files_checked} "
        f"file(s) ({result.cache_hits} cached, {result.graph_cache_hits} "
        f"graph-cached): {len(result.new)} new, "
        f"{len(result.baselined)} baselined"
    )
    if result.stale_baseline:
        lines.append(
            f"note: {len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} no longer "
            "fire — ratchet down with 'repro lint --update-baseline'"
        )
    if result.new:
        lines.append(
            "new findings fail the run; fix them, suppress with "
            "'# repro: allow[RULE]' + justification, or (deliberately) "
            "extend analysis/baseline.json"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    families = sorted({r.family for r in RULE_REGISTRY.values()})
    per_rule: dict[str, int] = {}
    for f in result.findings:
        per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
    doc = {
        "version": REPORT_VERSION,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "cache_hits": result.cache_hits,
        "graph_cache_hits": result.graph_cache_hits,
        "families": families,
        "counts": {
            "total": len(result.findings),
            "new": len(result.new),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
            "by_rule": dict(sorted(per_rule.items())),
        },
        "new": [f.to_dict() for f in result.new],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": [f.to_dict() for f in result.stale_baseline],
    }
    return json.dumps(doc, indent=2)
