"""Graph-powered analyses: hot-zone reachability, determinism taint, and
the cross-process shared-state checker.

Runs on the :class:`~repro.analysis.graph.CallGraph` the engine builds
from the cached module summaries.  Three passes:

**Hot-zone reachability** — the hot zones declared in
``analysis/layers.toml`` are roots; every function reachable over edges
at or above :data:`~repro.analysis.graph.OBLIGATION_CONFIDENCE` (and not
annotated ``# repro: cold-call -- reason``) inherits the HOT obligations.
Functions *declared* hot are skipped here — the per-file rules already
police them — so each allocation site is reported exactly once, by
whichever pass owns it.  Diagnostics carry the call chain
(``Processor.step → DemandSteering.cycle → RequirementsEncoder.encode``)
both in the message and in the finding's ``chain`` field, which
``repro lint --explain`` renders with file:line hops.

**Determinism taint** — calls resolving to
:data:`~repro.analysis.graph.TAINT_SOURCES` taint the local they are
assigned to; taint propagates through return values across call edges
(a global fixpoint over the graph) and through ``self.attr`` state within
a class.  DET006 fires when a *laundered* tainted value (at least one
call hop from its source) is stored into simulation state in a
determinism-scope file; DET007 fires anywhere a tainted value reaches a
canonical-JSON sink.  Direct source calls stay the business of the
per-file DET001/DET004 rules, so the two layers never double-report.

**Cross-process shared state** — each role in ``[process_roles]`` names
its entry points; functions are attributed to roles by reachability at
:data:`~repro.analysis.graph.ROLE_CONFIDENCE`.  Roles merge into one
process *domain* via ``scopes.shared_process`` (``"api_worker/drain"``
— a thread shares its parent's memory).  For every module-level mutable
binding in the concurrency scope: CON006 fires when a domain only
*reads* state that a different domain mutates (it observes a stale
pre-fork copy); CON007 fires when a mutation happens in a function no
declared role reaches (ownership cannot be proven — declare its entry
point).  Bindings constructed as explicit queues are exempt: the channel
is the sanctioned mechanism.

Everything a file's findings depend on besides its own content is
captured in :meth:`GraphAnalysis.context_for` — the engine digests that
context into the file's dependency-aware cache key.
"""

from __future__ import annotations

import hashlib
import json

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.graph import (
    OBLIGATION_CONFIDENCE,
    ROLE_CONFIDENCE,
    TAINT_SINKS,
    TAINT_SOURCES,
    CallGraph,
)
from repro.analysis.suppressions import SuppressionIndex

__all__ = ["GraphAnalysis", "GRAPH_RULE_IDS"]

#: rule ids the graph pass can produce (drives the --rules filter).
GRAPH_RULE_IDS = frozenset(
    {
        "HOT001", "HOT002", "HOT003", "HOT004", "HOT006", "HOT007",
        "DET006", "DET007", "CON006", "CON007", "ENG002",
    }
)

#: fixpoint safety bound; real trees converge in a handful of rounds.
_MAX_ROUNDS = 64


def _digest(value) -> str:
    return hashlib.sha256(
        json.dumps(value, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


class GraphAnalysis:
    """All whole-program results, with per-file derivation for caching."""

    def __init__(self, graph: CallGraph, config: AnalysisConfig) -> None:
        self.graph = graph
        self.config = config
        #: node id -> chain [[caller node, call line], ...] from a hot root.
        self.hot_chains = self._hot_reachability()
        #: node id -> taint witness {"source": ..., "chain": [...]} or None.
        self.taint: dict[str, dict | None] = {}
        #: (class id, attr) -> witness.
        self.state_taint: dict[tuple[str, str], dict] = {}
        #: per-module DET/sink findings raw records.
        self._det_records: dict[str, list[dict]] = {}
        self._sink_ids = self._sink_node_ids()
        self._run_taint()
        #: node id -> sorted role names reaching it.
        self.roles: dict[str, list[str]] = {}
        self._domain_of_role: dict[str, str] = {}
        self._con_records: dict[str, list[dict]] = {}
        self._run_roles()
        self._interfaces: dict[str, str] = {}

    # ------------------------------------------------------ hot reachability
    def _hot_roots(self) -> list[str]:
        roots: list[str] = []
        for mp, spec in sorted(self.config.hotzones.items()):
            summary = self.graph.summaries.get(mp)
            if summary is None:
                continue
            if "*" in spec:
                roots.extend(f"{mp}::{q}" for q in summary["functions"])
            else:
                roots.extend(
                    f"{mp}::{q}" for q in spec if q in summary["functions"]
                )
        return roots

    def _hot_reachability(self) -> dict[str, list]:
        return self.graph.reachable_from(
            self._hot_roots(), OBLIGATION_CONFIDENCE, skip_cold=True
        )

    def _declared_hot(self, mp: str, qualname: str) -> bool:
        spec = self.config.hot_functions(mp)
        return "*" in spec or qualname in spec

    # ---------------------------------------------------------------- taint
    def _sink_node_ids(self) -> set[str]:
        out: set[str] = set()
        for dotted in TAINT_SINKS:
            module, _, name = dotted.rpartition(".")
            mp = self.graph.modules.get(module)
            if mp is not None:
                out.add(f"{mp}::{name}")
        return out

    def _call_lookup(self, fn: dict) -> dict[tuple, dict]:
        return {(tuple(site["chain"]), site["line"]): site for site in fn["calls"]}

    def _eval_ref(
        self, ref: list, tainted_locals: dict, node_id: str, fn: dict,
        calls: dict[tuple, dict],
    ) -> dict | None:
        kind = ref[0]
        if kind == "local":
            return tainted_locals.get(ref[1])
        if kind == "state":
            cls = fn.get("cls")
            if cls is None:
                return None
            mp = node_id.partition("::")[0]
            witness = self.state_taint.get((f"{mp}::{cls}", ref[1]))
            return witness
        if kind == "chainload":
            external = self.graph.external_name(
                node_id.partition("::")[0], ref[1]
            )
            if external is not None and external in TAINT_SOURCES:
                return {"source": TAINT_SOURCES[external], "chain": []}
            return None
        if kind == "callchain":
            chain, line = tuple(ref[1]), ref[2]
            site = calls.get((chain, line))
            resolved = (
                site["resolved"] if site is not None else [
                    [t, k, c] for t, k, c in self.graph.resolve_call(
                        node_id.partition("::")[0],
                        node_id.partition("::")[2],
                        fn, list(chain),
                    )
                ]
            )
            for target, _, confidence in resolved:
                if target.startswith("<ext:"):
                    external = target[5:-1]
                    if external in TAINT_SOURCES:
                        return {
                            "source": TAINT_SOURCES[external], "chain": [],
                        }
                elif confidence >= OBLIGATION_CONFIDENCE:
                    witness = self.taint.get(target)
                    if witness is not None:
                        return {
                            "source": witness["source"],
                            "chain": witness["chain"] + [[target, line]],
                        }
            return None
        return None

    def _run_taint(self) -> None:
        functions = self.graph.functions
        for node_id in functions:
            self.taint[node_id] = None
        for _ in range(_MAX_ROUNDS):
            changed = False
            for node_id in sorted(functions):
                fn = functions[node_id]
                calls = self._call_lookup(fn)
                tainted_locals: dict[str, dict] = {}
                for _ in range(4):  # local chains converge fast
                    local_changed = False
                    for record in fn["assigns"]:
                        witness = None
                        for use in record["uses"]:
                            witness = self._eval_ref(
                                use, tainted_locals, node_id, fn, calls
                            )
                            if witness is not None:
                                break
                        if witness is None:
                            continue
                        target_kind, target_name = record["t"]
                        if target_kind == "local":
                            if target_name not in tainted_locals:
                                tainted_locals[target_name] = witness
                                local_changed = True
                        elif target_kind == "state":
                            cls = fn.get("cls")
                            if cls is None:
                                continue
                            mp = node_id.partition("::")[0]
                            key = (f"{mp}::{cls}", target_name)
                            if key not in self.state_taint:
                                self.state_taint[key] = witness
                                changed = True
                    if not local_changed:
                        break
                if self.taint[node_id] is None:
                    for record in fn["returns"]:
                        for use in record["uses"]:
                            witness = self._eval_ref(
                                use, tainted_locals, node_id, fn, calls
                            )
                            if witness is not None:
                                self.taint[node_id] = witness
                                changed = True
                                break
                        if self.taint[node_id] is not None:
                            break
            if not changed:
                break
        self._collect_det_records()

    def _collect_det_records(self) -> None:
        for node_id in sorted(self.graph.functions):
            fn = self.graph.functions[node_id]
            mp, _, qualname = node_id.partition("::")
            calls = self._call_lookup(fn)
            tainted_locals: dict[str, dict] = {}
            for _ in range(4):
                local_changed = False
                for record in fn["assigns"]:
                    if record["t"][0] != "local":
                        continue
                    for use in record["uses"]:
                        witness = self._eval_ref(
                            use, tainted_locals, node_id, fn, calls
                        )
                        if witness is not None and record["t"][1] not in tainted_locals:
                            tainted_locals[record["t"][1]] = witness
                            local_changed = True
                            break
                if not local_changed:
                    break
            records = self._det_records.setdefault(mp, [])
            if self.config.in_scope(mp, self.config.determinism_scope):
                for record in fn["assigns"]:
                    if record["t"][0] != "state":
                        continue
                    for use in record["uses"]:
                        witness = self._eval_ref(
                            use, tainted_locals, node_id, fn, calls
                        )
                        # at least one call hop: direct source calls are
                        # DET001/DET004 territory (per-file)
                        if witness is not None and witness["chain"]:
                            records.append({
                                "rule": "DET006", "line": record["line"],
                                "qualname": qualname,
                                "attr": record["t"][1],
                                "source": witness["source"],
                                "chain": witness["chain"],
                            })
                            break
            for site in fn["calls"]:
                if not any(
                    target in self._sink_ids
                    for target, _, _ in site.get("resolved", [])
                ):
                    continue
                for use in site["uses"]:
                    witness = self._eval_ref(
                        use, tainted_locals, node_id, fn, calls
                    )
                    if witness is not None:
                        records.append({
                            "rule": "DET007", "line": site["line"],
                            "qualname": qualname,
                            "source": witness["source"],
                            "chain": witness["chain"],
                        })
                        break

    # ---------------------------------------------------------------- roles
    def _run_roles(self) -> None:
        role_table = getattr(self.config, "process_roles", {})
        if not role_table:
            return
        # role -> domain (roles merged by scopes.shared_process)
        shared = getattr(self.config, "shared_process", ())
        groups: dict[str, set[str]] = {r: {r} for r in role_table}
        for entry in shared:
            members = [m for m in entry.split("/") if m in groups]
            if len(members) < 2:
                continue
            merged: set[str] = set()
            for member in members:
                merged |= groups[member]
            for member in merged:
                groups[member] = merged
        for role in sorted(role_table):
            self._domain_of_role[role] = "+".join(sorted(groups[role]))

        reach: dict[str, dict[str, list]] = {}
        for role in sorted(role_table):
            roots = [r for r in role_table[role]]
            reach[role] = self.graph.reachable_from(
                roots, ROLE_CONFIDENCE, skip_cold=False
            )
        for node_id in sorted(self.graph.functions):
            owning = sorted(
                role for role in reach if node_id in reach[role]
            )
            if owning:
                self.roles[node_id] = owning

        for mp in sorted(self.graph.summaries):
            if not self.config.in_scope(mp, self.config.concurrency_scope):
                continue
            summary = self.graph.summaries[mp]
            for name in sorted(summary["module_mutables"]):
                binding = summary["module_mutables"][name]
                if binding.get("channel"):
                    continue
                writers: list[tuple[str, int]] = []
                readers: list[tuple[str, int]] = []
                for qualname in sorted(summary["functions"]):
                    fn = summary["functions"][qualname]
                    node_id = f"{mp}::{qualname}"
                    write_lines = {
                        line for n, line in fn["global_writes"] if n == name
                    }
                    for n, line in fn["global_writes"]:
                        if n == name:
                            writers.append((node_id, line))
                    for n, line in fn["global_reads"]:
                        if n == name and line not in write_lines:
                            readers.append((node_id, line))
                if not writers:
                    continue
                records = self._con_records.setdefault(mp, [])
                writer_domains: set[str] = set()
                for node_id, line in writers:
                    roles = self.roles.get(node_id)
                    if roles is None:
                        records.append({
                            "rule": "CON007", "line": line, "name": name,
                            "qualname": node_id.partition("::")[2],
                        })
                    else:
                        writer_domains.update(
                            self._domain_of_role[r] for r in roles
                        )
                if not writer_domains:
                    continue
                seen_readers: set[tuple[str, str]] = set()
                for node_id, line in readers:
                    roles = self.roles.get(node_id)
                    if roles is None:
                        continue
                    for domain in sorted(
                        self._domain_of_role[r] for r in roles
                    ):
                        if domain in writer_domains:
                            continue
                        key = (node_id, domain)
                        if key in seen_readers:
                            continue
                        seen_readers.add(key)
                        records.append({
                            "rule": "CON006", "line": line, "name": name,
                            "qualname": node_id.partition("::")[2],
                            "domain": domain,
                            "writers": sorted(writer_domains),
                        })

    # ------------------------------------------------------------ interfaces
    def interface_digest(self, mp: str) -> str:
        """Digest of everything other files' findings can observe of
        ``mp``: per-function taint, effect sites, hot membership."""
        cached = self._interfaces.get(mp)
        if cached is not None:
            return cached
        summary = self.graph.summaries[mp]
        doc = {}
        for qualname in sorted(summary["functions"]):
            fn = summary["functions"][qualname]
            node_id = f"{mp}::{qualname}"
            doc[qualname] = {
                "taint": self.taint.get(node_id),
                "effects": [
                    [e["rule"], e["line"]] for e in fn["effects"]
                ],
                "raises_only": fn["raises_only"],
                "hot": node_id in self.hot_chains,
            }
        state = {
            f"{cid}::{attr}": witness
            for (cid, attr), witness in sorted(self.state_taint.items())
            if cid.partition("::")[0] == mp
        }
        digest = _digest({"functions": doc, "state": state})
        self._interfaces[mp] = digest
        return digest

    def context_for(self, mp: str) -> dict:
        """Everything ``findings_for(mp)`` depends on besides the file's
        own content — digested into the dependency-aware cache key."""
        summary = self.graph.summaries.get(mp)
        if summary is None:
            return {}
        deps = self.graph.file_dependencies().get(mp, [])
        hot = {}
        for qualname in sorted(summary["functions"]):
            chain = self.hot_chains.get(f"{mp}::{qualname}")
            if chain is not None:
                hot[qualname] = chain
        return {
            "deps": {d: self.interface_digest(d) for d in deps},
            "hot": hot,
            "det": self._det_records.get(mp, []),
            "con": self._con_records.get(mp, []),
            "roles": {
                q: self.roles.get(f"{mp}::{q}")
                for q in sorted(summary["functions"])
                if f"{mp}::{q}" in self.roles
            },
        }

    # -------------------------------------------------------------- findings
    def _chain_names(self, chain: list, tail: str) -> str:
        names = [hop[0].partition("::")[2] for hop in chain]
        names.append(tail)
        return " → ".join(names)

    def findings_for(
        self,
        mp: str,
        display_path: str,
        suppressions: SuppressionIndex,
    ) -> list[Finding]:
        """Derive one file's interprocedural findings (pre --rules filter)."""
        summary = self.graph.summaries.get(mp)
        if summary is None:
            return []
        findings: list[Finding] = []

        for line in summary["malformed_cold"]:
            findings.append(Finding(
                rule="ENG002", path=display_path, line=line, col=0,
                message="cold-call annotation missing mandatory '-- reason'",
            ))

        for qualname in sorted(summary["functions"]):
            fn = summary["functions"][qualname]
            node_id = f"{mp}::{qualname}"
            chain = self.hot_chains.get(node_id)
            if chain is None or not chain:
                continue  # unreached, or itself a root (declared hot)
            if self._declared_hot(mp, qualname):
                continue  # per-file rules own declared hot zones
            if fn["raises_only"]:
                continue  # error helpers: cold by construction
            path_names = self._chain_names(chain, qualname)
            for effect in fn["effects"]:
                findings.append(Finding(
                    rule=effect["rule"], path=display_path,
                    line=effect["line"], col=effect["col"],
                    message=(
                        f"{effect['detail']} in '{qualname}', reachable "
                        f"from hot zone via {path_names}"
                    ),
                    chain=tuple(
                        (hop[0], hop[1]) for hop in chain
                    ) + ((node_id, fn["line"]),),
                ))

        for record in self._det_records.get(mp, []):
            if record["rule"] == "DET006":
                message = (
                    f"nondeterministic value ({record['source']}) stored "
                    f"into simulation state 'self.{record['attr']}' in "
                    f"'{record['qualname']}' via "
                    f"{self._chain_names(record['chain'], record['qualname'])}"
                )
            else:
                message = (
                    f"nondeterministic value ({record['source']}) reaches "
                    f"a canonical-JSON sink in '{record['qualname']}'"
                )
            findings.append(Finding(
                rule=record["rule"], path=display_path,
                line=record["line"], col=0, message=message,
                chain=tuple((hop[0], hop[1]) for hop in record["chain"]),
            ))

        for record in self._con_records.get(mp, []):
            if record["rule"] == "CON006":
                message = (
                    f"module state '{record['name']}' is read in process "
                    f"domain '{record['domain']}' but mutated in "
                    f"{record['writers']} — cross-process state must go "
                    f"through RunStore scopes or an explicit queue"
                )
            else:
                message = (
                    f"mutation of module state '{record['name']}' in "
                    f"'{record['qualname']}' has no process-role "
                    f"attribution; declare its entry point in "
                    f"[process_roles]"
                )
            findings.append(Finding(
                rule=record["rule"], path=display_path,
                line=record["line"], col=0, message=message,
            ))

        kept = [
            f for f in findings
            if not suppressions.is_suppressed(f.rule, f.line)
        ]
        kept.sort(key=Finding.sort_key)
        return kept
