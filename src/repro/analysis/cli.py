"""The ``repro lint`` subcommand.

Exit codes follow the convention of the other gates in this repo:

* ``0`` — no *new* findings (baselined findings are reported, not fatal);
* ``1`` — at least one finding outside the committed baseline;
* ``2`` — configuration problem (missing/invalid layers.toml, bad rule
  filter, unreadable paths, an ``--explain`` target that matches no
  finding).

``--update-baseline`` rewrites ``analysis/baseline.json`` with exactly
the findings of this run, prints every stale entry it pruned, and exits
0 — the ratchet operation after fixing (or deliberately accepting)
findings.

``--changed`` restricts the per-file phase to files changed since
``git merge-base HEAD origin/main`` *plus their reverse call-graph
dependents* — the set whose findings can actually differ.  The call
graph itself is still built over the whole package (a partial graph
would resolve calls wrongly), but summaries are content-cached, so the
warm cost is a cache sweep, not a re-analysis.

``--graph-out FILE`` writes the canonical call-graph artifact;
``--explain path:line:RULE`` prints the call chain behind one
interprocedural finding; ``--explain-new-out FILE`` writes the chains of
every *new* finding (what CI attaches to a failing run).
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

from repro.analysis.baseline import load_baseline, partition, save_baseline
from repro.analysis.config import DEFAULT_CONFIG_PATH, load_config
from repro.analysis.engine import AnalysisEngine
from repro.analysis.findings import Finding
from repro.analysis.report import LintResult, render_human, render_json
from repro.analysis.rules import RULE_REGISTRY, all_rules
from repro.errors import ConfigurationError

__all__ = ["add_lint_arguments", "run_lint"]

#: default cache location (ignored by git; ``make lint-clean`` removes it).
DEFAULT_CACHE = pathlib.Path(".analysis-cache") / "findings.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--config",
        default=None,
        help="layer/hot-zone table (default: analysis/layers.toml)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline file (default: analysis/baseline.json; "
             "'none' disables baselining)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (json is what CI uploads)",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=None,
        help="write the report to a file as well as stdout-on-failure",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="run only these rule ids (default: every registered rule)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline with this run's findings (printing any "
             "pruned stale entries) and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the per-file result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: {DEFAULT_CACHE.parent})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="package root directory module paths are relative to "
             "(default: <repo>/src)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="analyse only files changed since merge-base with "
             "origin/main, plus their reverse call-graph dependents",
    )
    parser.add_argument(
        "--changed-base",
        default="origin/main",
        metavar="REF",
        help="ref --changed diffs against (default: origin/main)",
    )
    parser.add_argument(
        "--graph-out",
        default=None,
        metavar="FILE",
        help="write the canonical call-graph JSON artifact to FILE",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="PATH:LINE:RULE",
        help="print the call chain behind one finding "
             "(e.g. src/repro/steering/demand.py:42:HOT001)",
    )
    parser.add_argument(
        "--explain-new-out",
        default=None,
        metavar="FILE",
        help="write --explain style chains for every NEW finding to FILE",
    )


def _git_changed_files(repo_root: pathlib.Path, base: str) -> list[str] | None:
    """Repo-relative paths changed vs merge-base(HEAD, base), including
    uncommitted and untracked files; None when git is unusable."""
    def git(*argv: str) -> str | None:
        try:
            proc = subprocess.run(
                ["git", *argv], cwd=repo_root, capture_output=True,
                text=True, timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout

    merge_base = git("merge-base", "HEAD", base)
    if merge_base is None:
        return None
    diff = git("diff", "--name-only", merge_base.strip())
    untracked = git("ls-files", "--others", "--exclude-standard")
    if diff is None or untracked is None:
        return None
    return sorted({p for p in (diff + untracked).splitlines() if p})


def _chain_lines(
    finding: Finding, root: pathlib.Path, repo_root: pathlib.Path
) -> list[str]:
    """Render one finding's call chain as indented file:line hops."""
    lines = [
        f"{finding.path}:{finding.line}:{finding.col}: "
        f"{finding.rule} {finding.message}"
    ]
    if not finding.chain:
        lines.append("  (no recorded call chain: per-file finding)")
        return lines
    lines.append("  call chain:")
    for index, (node, line) in enumerate(finding.chain):
        module_path, _, qualname = node.partition("::")
        try:
            display = (root / module_path).resolve().relative_to(
                repo_root
            ).as_posix()
        except ValueError:
            display = module_path
        arrow = "    " if index == 0 else "    → "
        lines.append(f"{arrow}{qualname} ({display}:{line})")
    return lines


def _parse_explain_target(spec: str) -> tuple[str, int, str] | None:
    parts = spec.rsplit(":", 2)
    if len(parts) != 3:
        return None
    path, line, rule = parts
    try:
        return path, int(line), rule
    except ValueError:
        return None


def run_lint(args: argparse.Namespace) -> int:
    repo_root = pathlib.Path.cwd()
    root = pathlib.Path(args.root) if args.root else repo_root / "src"
    config_path = (
        pathlib.Path(args.config) if args.config else repo_root / DEFAULT_CONFIG_PATH
    )
    baseline_path: pathlib.Path | None
    if args.baseline == "none":
        baseline_path = None
    elif args.baseline:
        baseline_path = pathlib.Path(args.baseline)
    else:
        baseline_path = repo_root / "analysis" / "baseline.json"

    try:
        config = load_config(config_path)
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    rules = all_rules()
    if args.rules:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in wanted if r not in RULE_REGISTRY]
        if unknown:
            print(
                f"repro lint: unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(RULE_REGISTRY))}",
                file=sys.stderr,
            )
            return 2
        rules = [RULE_REGISTRY[r] for r in wanted]

    paths = [pathlib.Path(p) for p in args.paths] or [root / config.package]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro lint: no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    cache_path = None
    if not args.no_cache:
        cache_dir = (
            pathlib.Path(args.cache_dir)
            if args.cache_dir
            else repo_root / DEFAULT_CACHE.parent
        )
        cache_path = cache_dir / DEFAULT_CACHE.name

    engine = AnalysisEngine(
        config,
        root=root,
        repo_root=repo_root,
        cache_path=cache_path,
        rules=rules,
    )

    if args.changed:
        changed = _git_changed_files(repo_root, args.changed_base)
        if changed is None:
            print(
                f"repro lint: --changed needs a git checkout with "
                f"{args.changed_base!r} resolvable; falling back to a "
                "full run",
                file=sys.stderr,
            )
        else:
            changed_mods = set()
            for rel in changed:
                path = (repo_root / rel).resolve()
                if path.suffix != ".py" or not path.exists():
                    continue
                try:
                    changed_mods.add(path.relative_to(root).as_posix())
                except ValueError:
                    continue
            closure = engine.file_closure(changed_mods)
            paths = [
                root / module_path
                for module_path in sorted(closure)
                if (root / module_path).exists()
            ]
            if not paths:
                print("repro lint --changed: no analysable files changed")
                if args.graph_out:
                    pathlib.Path(args.graph_out).write_text(
                        engine.graph_json() + "\n"
                    )
                engine.save_cache()
                return 0

    findings = engine.run(paths)

    if args.graph_out:
        pathlib.Path(args.graph_out).write_text(engine.graph_json() + "\n")

    if args.explain:
        target = _parse_explain_target(args.explain)
        if target is None:
            print(
                "repro lint: --explain wants PATH:LINE:RULE "
                f"(got {args.explain!r})",
                file=sys.stderr,
            )
            return 2
        path, line, rule = target
        matches = [
            f for f in findings
            if f.path == path and f.line == line and f.rule == rule
        ]
        if not matches:
            print(
                f"repro lint: no finding at {path}:{line} for {rule} "
                "in this run",
                file=sys.stderr,
            )
            return 2
        for finding in matches:
            print("\n".join(_chain_lines(finding, root, repo_root)))
        return 0

    if args.update_baseline:
        if baseline_path is None:
            print("repro lint: --update-baseline needs a baseline path",
                  file=sys.stderr)
            return 2
        try:
            previous = load_baseline(baseline_path)
        except ConfigurationError:
            previous = []
        current_fps = {f.fingerprint() for f in findings}
        pruned = [b for b in previous if b.fingerprint() not in current_fps]
        save_baseline(baseline_path, findings)
        for entry in sorted(pruned, key=Finding.sort_key):
            print(f"pruned stale baseline entry: {entry.fingerprint()}")
        print(
            f"baseline rewritten: {len(findings)} finding(s) "
            f"({len(pruned)} pruned) -> {baseline_path}"
        )
        return 0

    try:
        baseline = load_baseline(baseline_path)
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    new, baselined, stale = partition(findings, baseline)
    result = LintResult(
        findings=findings,
        new=new,
        baselined=baselined,
        stale_baseline=stale,
        files_checked=engine.files_checked,
        cache_hits=engine.cache_hits,
        graph_cache_hits=engine.graph_cache_hits,
    )

    text = render_json(result) if args.format == "json" else render_human(result)
    print(text)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n")
    if args.explain_new_out:
        blocks = [
            "\n".join(_chain_lines(f, root, repo_root)) for f in new
        ]
        pathlib.Path(args.explain_new_out).write_text(
            ("\n\n".join(blocks) + "\n") if blocks else "no new findings\n"
        )
    return 0 if result.ok else 1
