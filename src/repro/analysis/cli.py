"""The ``repro lint`` subcommand.

Exit codes follow the convention of the other gates in this repo:

* ``0`` — no *new* findings (baselined findings are reported, not fatal);
* ``1`` — at least one finding outside the committed baseline;
* ``2`` — configuration problem (missing/invalid layers.toml, bad rule
  filter, unreadable paths).

``--update-baseline`` rewrites ``analysis/baseline.json`` with exactly
the findings of this run and exits 0 — the ratchet operation after
fixing (or deliberately accepting) findings.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.analysis.baseline import load_baseline, partition, save_baseline
from repro.analysis.config import DEFAULT_CONFIG_PATH, load_config
from repro.analysis.engine import AnalysisEngine
from repro.analysis.report import LintResult, render_human, render_json
from repro.analysis.rules import RULE_REGISTRY, all_rules
from repro.errors import ConfigurationError

__all__ = ["add_lint_arguments", "run_lint"]

#: default cache location (ignored by git; ``make lint-clean`` removes it).
DEFAULT_CACHE = pathlib.Path(".analysis-cache") / "findings.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--config",
        default=None,
        help="layer/hot-zone table (default: analysis/layers.toml)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline file (default: analysis/baseline.json; "
             "'none' disables baselining)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (json is what CI uploads)",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=None,
        help="write the report to a file as well as stdout-on-failure",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="run only these rule ids (default: every registered rule)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline with this run's findings and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the per-file result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: {DEFAULT_CACHE.parent})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="package root directory module paths are relative to "
             "(default: <repo>/src)",
    )


def run_lint(args: argparse.Namespace) -> int:
    repo_root = pathlib.Path.cwd()
    root = pathlib.Path(args.root) if args.root else repo_root / "src"
    config_path = (
        pathlib.Path(args.config) if args.config else repo_root / DEFAULT_CONFIG_PATH
    )
    baseline_path: pathlib.Path | None
    if args.baseline == "none":
        baseline_path = None
    elif args.baseline:
        baseline_path = pathlib.Path(args.baseline)
    else:
        baseline_path = repo_root / "analysis" / "baseline.json"

    try:
        config = load_config(config_path)
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    rules = all_rules()
    if args.rules:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in wanted if r not in RULE_REGISTRY]
        if unknown:
            print(
                f"repro lint: unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(RULE_REGISTRY))}",
                file=sys.stderr,
            )
            return 2
        rules = [RULE_REGISTRY[r] for r in wanted]

    paths = [pathlib.Path(p) for p in args.paths] or [root / config.package]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro lint: no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    cache_path = None
    if not args.no_cache:
        cache_dir = (
            pathlib.Path(args.cache_dir)
            if args.cache_dir
            else repo_root / DEFAULT_CACHE.parent
        )
        cache_path = cache_dir / DEFAULT_CACHE.name

    engine = AnalysisEngine(
        config,
        root=root,
        repo_root=repo_root,
        cache_path=cache_path,
        rules=rules,
    )
    findings = engine.run(paths)

    if args.update_baseline:
        if baseline_path is None:
            print("repro lint: --update-baseline needs a baseline path",
                  file=sys.stderr)
            return 2
        save_baseline(baseline_path, findings)
        print(
            f"baseline rewritten: {len(findings)} finding(s) -> {baseline_path}"
        )
        return 0

    try:
        baseline = load_baseline(baseline_path)
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    new, baselined, stale = partition(findings, baseline)
    result = LintResult(
        findings=findings,
        new=new,
        baselined=baselined,
        stale_baseline=stale,
        files_checked=engine.files_checked,
        cache_hits=engine.cache_hits,
    )

    text = render_json(result) if args.format == "json" else render_human(result)
    print(text)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n")
    return 0 if result.ok else 1
