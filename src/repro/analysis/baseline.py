"""The committed findings baseline (``analysis/baseline.json``).

The baseline grandfathers findings that predate the gate, so ``repro
lint`` can land green and then ratchet *down*: a finding in the baseline
is reported but does not fail the run; a finding not in the baseline
fails it; a baseline entry that no longer fires is *stale* and should be
dropped with ``repro lint --update-baseline``.  CI treats new findings
as failures, which means the baseline can only shrink — growing it is a
reviewed, deliberate act of editing a committed file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding
from repro.errors import ConfigurationError

__all__ = ["load_baseline", "save_baseline", "partition"]

_VERSION = 1


def load_baseline(path: str | Path | None) -> list[Finding]:
    """Read the baseline; a missing file is an empty baseline."""
    if path is None:
        return []
    path = Path(path)
    if not path.exists():
        return []
    try:
        raw = json.loads(path.read_text())
        entries = raw["findings"] if isinstance(raw, dict) else raw
        return [Finding.from_dict(e) for e in entries]
    except (ValueError, KeyError, TypeError) as exc:
        raise ConfigurationError(f"corrupt baseline {path}: {exc}") from exc


def save_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write the baseline (sorted, versioned, one entry per line-ish)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "version": _VERSION,
        "findings": [
            f.to_dict() for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")


def partition(
    findings: list[Finding], baseline: list[Finding]
) -> tuple[list[Finding], list[Finding], list[Finding]]:
    """Split findings into (new, baselined); third item is stale entries.

    *new* findings are absent from the baseline (these fail the run),
    *baselined* ones are matched by it, and *stale* baseline entries
    matched nothing this run (the ratchet: regenerate to drop them).
    """
    known = {f.fingerprint() for f in baseline}
    new = [f for f in findings if f.fingerprint() not in known]
    baselined = [f for f in findings if f.fingerprint() in known]
    seen = {f.fingerprint() for f in findings}
    stale = [b for b in baseline if b.fingerprint() not in seen]
    return new, baselined, stale
