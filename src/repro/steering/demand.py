"""Demand-driven configuration synthesis (§5 extension).

The paper's closing section names two open problems: formulating an
optimal steering basis, and "the separate problem of being able to
dynamically reconfigure *without* using predefined configurations".  This
module implements the latter: instead of scoring a fixed candidate set,
the synthesizer builds a bespoke target configuration directly from the
observed demand.

Mechanism:

* the per-type required counts from the Fig. 2 requirement encoders are
  smoothed with an exponential moving average (raw 7-entry windows are far
  too noisy to retarget on);
* a greedy knapsack fills the slot budget with the units of highest
  *marginal* value — demand per already-provisioned unit of that type,
  discounted by slot cost — which is the natural relaxation of the CEM
  objective;
* hysteresis: the loader is only retargeted when the synthesized
  configuration improves the exact error against the smoothed demand by a
  margin, preventing the thrash that plagues overlapping candidate sets
  (see examples/custom_steering_basis.py).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError
from repro.fabric.configuration import FFU_COUNTS, Configuration
from repro.isa.futypes import FU_TYPES, FUType

__all__ = ["DemandSynthesizer", "greedy_fill", "greedy_fill_counts"]


def greedy_fill_counts(
    demand: Sequence[float],
    n_slots: int = 8,
    ffu_counts: dict[FUType, int] | None = None,
    min_marginal: float = 0.05,
) -> dict[FUType, int]:
    """Fill the slot budget greedily by marginal demand value.

    Each step adds the unit type with the highest demand per
    already-provisioned unit (discounted by slot cost), skipping types
    whose demand is already saturated.  Returns the raw per-type counts;
    :func:`greedy_fill` wraps them in a named :class:`Configuration`.
    The counts form is the per-cycle path: the synthesizer only
    materialises a Configuration when the loader actually retargets.
    """
    ffus = FFU_COUNTS if ffu_counts is None else ffu_counts
    counts: dict[FUType, int] = {}
    free = n_slots
    while free > 0:
        best_type: FUType | None = None
        best_value = 0.0
        for i, t in enumerate(FU_TYPES):
            if t.slot_cost > free:
                continue
            provisioned = ffus.get(t, 0) + counts.get(t, 0)
            if provisioned >= demand[i]:
                continue  # demand already saturated: more units are waste
            marginal = demand[i] / (provisioned * t.slot_cost)
            if marginal > best_value:
                best_value = marginal
                best_type = t
        if best_type is None or best_value < min_marginal:
            break
        counts[best_type] = counts.get(best_type, 0) + 1
        free -= best_type.slot_cost
    return counts


def greedy_fill(
    demand: Sequence[float],
    n_slots: int = 8,
    ffu_counts: dict[FUType, int] | None = None,
    name: str = "synth",
    min_marginal: float = 0.05,
) -> Configuration:
    """:func:`greedy_fill_counts` materialised as a named configuration.

    Shared by the demand-steering policy and the §5 basis-design search.
    """
    counts = greedy_fill_counts(
        demand, n_slots=n_slots, ffu_counts=ffu_counts, min_marginal=min_marginal
    )
    return Configuration(name, counts).validate(n_slots)


class DemandSynthesizer:
    """Synthesizes target configurations straight from observed demand."""

    def __init__(
        self,
        n_slots: int = 8,
        ffu_counts: dict[FUType, int] | None = None,
        smoothing: float = 0.1,
        improvement_margin: float = 0.15,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError("smoothing must be in (0, 1]")
        if improvement_margin < 0.0:
            raise ConfigurationError("improvement margin must be non-negative")
        self.n_slots = n_slots
        self.ffu_counts = FFU_COUNTS if ffu_counts is None else dict(ffu_counts)
        self.smoothing = smoothing
        self.improvement_margin = improvement_margin
        self._demand = [0.0] * len(FU_TYPES)
        self._synth_counter = 0
        #: reused per-type buffer for the hysteresis comparison, so the
        #: per-cycle retarget check allocates nothing.
        self._scratch_target: list[int] = []

    @property
    def demand(self) -> tuple[float, ...]:
        """The smoothed per-type demand estimate."""
        return tuple(self._demand)

    def observe(self, required: Sequence[int]) -> None:
        """Fold one cycle's required counts into the demand estimate."""
        if len(required) != len(FU_TYPES):
            raise ConfigurationError(
                f"required counts need {len(FU_TYPES)} entries, got {len(required)}"
            )
        a = self.smoothing
        for i, r in enumerate(required):
            self._demand[i] = (1.0 - a) * self._demand[i] + a * r

    def synthesize_counts(self) -> dict[FUType, int]:
        """Greedy knapsack: fill the slot budget by marginal demand value.

        One synthesis event per call (the counter that names materialised
        configurations advances here, whether or not the result is ever
        adopted), but no :class:`Configuration` is built — the per-cycle
        path stays allocation-light and only :meth:`materialize` pays for
        a named object when the loader actually retargets.
        """
        self._synth_counter += 1
        return greedy_fill_counts(
            self._demand, n_slots=self.n_slots, ffu_counts=self.ffu_counts
        )

    def materialize(self, counts: dict[FUType, int]) -> Configuration:
        """Wrap synthesized counts as the named, validated configuration."""
        return Configuration(f"demand-{self._synth_counter}", counts).validate(
            self.n_slots
        )

    def synthesize(self) -> Configuration:
        """One-shot convenience: :meth:`synthesize_counts` materialised."""
        return self.materialize(self.synthesize_counts())

    def should_retarget_counts(
        self,
        counts: dict[FUType, int],
        current_counts: Sequence[int],
    ) -> bool:
        """Hysteresis: retarget only on a clear expected improvement.

        ``counts`` are synthesized RFU counts (:meth:`synthesize_counts`);
        ``current_counts`` are the live configured units per type
        (including the fixed bank).
        """
        target_counts = self._scratch_target
        target_counts.clear()
        for t in FU_TYPES:
            target_counts.append(counts.get(t, 0) + self.ffu_counts.get(t, 0))
        current_err = self._saturated_error(current_counts)
        target_err = self._saturated_error(target_counts)
        if current_err <= 0.0:
            return False
        return target_err < current_err * (1.0 - self.improvement_margin)

    def should_retarget(
        self,
        target: Configuration,
        current_counts: Sequence[int],
    ) -> bool:
        """:meth:`should_retarget_counts` for an already-built configuration."""
        counts: dict[FUType, int] = {}
        for t in FU_TYPES:
            counts[t] = target.count(t)
        return self.should_retarget_counts(counts, current_counts)

    def _saturated_error(self, available: Sequence[int]) -> float:
        """Queue-drain estimate: a type's term cannot drop below one cycle,
        so units beyond the demand level contribute nothing (this is what
        stops the synthesizer chasing ever-larger configurations)."""
        total = 0.0
        for demand, avail in zip(self._demand, available):
            if demand <= 1e-3:
                continue
            if avail <= 0:
                total += demand * 8.0
            else:
                total += max(1.0, demand / avail)
        return total
