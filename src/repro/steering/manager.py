"""The configuration manager: selection unit + loader, clocked per cycle.

Each cycle the manager

1. feeds the ready instructions and the live configured-unit counts to the
   selection unit,
2. points the loader at the chosen steering configuration (or clears the
   target when the current configuration wins), and
3. lets the loader start at most one partial reconfiguration.

It also keeps the statistics the evaluation harness reports: selection
histogram, reconfiguration count, and (optionally) the full per-cycle
error/selection trace used by the phase-adaptation experiment.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.fabric.configuration import PREDEFINED_CONFIGS, Configuration
from repro.fabric.fabric import Fabric
from repro.isa.instruction import Instruction
from repro.steering.loader import ConfigurationLoader, LoadPlan
from repro.steering.selection import ConfigurationSelectionUnit, SelectionResult

__all__ = ["ManagerStats", "ConfigurationManager"]


@dataclass(slots=True)
class ManagerStats:
    """Aggregate behaviour of the configuration manager."""

    cycles: int = 0
    #: how often each candidate index (0 = current) was selected.
    selections: dict[int, int] = field(default_factory=dict)
    #: partial reconfigurations started.
    loads: int = 0
    #: cumulative 6-bit error of the selected candidate (for mean error).
    total_selected_error: int = 0

    @property
    def mean_selected_error(self) -> float:
        return self.total_selected_error / self.cycles if self.cycles else 0.0

    @property
    def current_kept_fraction(self) -> float:
        """Fraction of cycles the current configuration was best (stability)."""
        if not self.cycles:
            return 0.0
        return self.selections.get(0, 0) / self.cycles


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One cycle of the (optional) steering trace."""

    cycle: int
    selection: int
    errors: tuple[int, ...]
    required: tuple[int, ...]
    load: LoadPlan | None


class ConfigurationManager:
    """Drives configuration steering for one processor instance."""

    def __init__(
        self,
        fabric: Fabric,
        configs: Sequence[Configuration] = PREDEFINED_CONFIGS,
        use_exact_metric: bool = False,
        queue_size: int = 7,
        record_trace: bool = False,
        trace_limit: int | None = None,
    ) -> None:
        self.fabric = fabric
        self.selection_unit = ConfigurationSelectionUnit(
            configs=configs,
            queue_size=queue_size,
            use_exact_metric=use_exact_metric,
        )
        self.loader = ConfigurationLoader(fabric)
        self.stats = ManagerStats()
        #: per-cycle steering trace, recorded only on request.  With a
        #: ``trace_limit`` the trace is a ring buffer keeping the newest
        #: entries, so arbitrarily long runs hold bounded memory;
        #: ``trace_limit=None`` opts into full retention (the
        #: phase-adaptation experiment needs the whole trajectory).
        self.trace: deque[TraceEntry] | None = (
            deque(maxlen=trace_limit) if record_trace else None
        )
        #: candidate index selected by the most recent cycle (0 = current);
        #: kept unconditionally so callers never touch the trace for it.
        self.last_selection: int | None = None
        #: full selection result of the most recent cycle — the frozen
        #: object the selection unit returned, kept by reference (no
        #: per-cycle allocation) for the telemetry decision ledger.
        self.last_result: SelectionResult | None = None
        #: 6-bit CEM error of the winning candidate in the most recent cycle.
        self.last_error: int = 0
        #: most recent reconfiguration started by the loader.  Never cleared;
        #: pair with ``stats.loads`` to detect a fresh one.
        self.last_load: LoadPlan | None = None

    def cycle(self, ready_queue: Sequence[Instruction]) -> SelectionResult:
        """One clock of the manager.  ``ready_queue`` holds the unscheduled
        instructions the selection unit inspects (at most the queue size)."""
        counts = self.loader.current_counts()
        result = self.selection_unit.select(ready_queue, counts)
        self.loader.set_target(result.config)
        plan = self.loader.step()

        self.last_selection = result.index
        self.last_result = result
        self.last_error = result.errors[result.index]
        self.stats.cycles += 1
        self.stats.selections[result.index] = (
            self.stats.selections.get(result.index, 0) + 1
        )
        self.stats.total_selected_error += result.errors[result.index]
        if plan is not None:
            self.stats.loads += 1
            self.last_load = plan
        if self.trace is not None:
            self.trace.append(
                TraceEntry(
                    cycle=self.stats.cycles,
                    selection=result.index,
                    errors=result.errors,
                    required=result.required,
                    load=plan,
                )
            )
        return result
