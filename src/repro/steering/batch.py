"""Vectorised (numpy) batch evaluation of the selection unit.

The scalar models in :mod:`repro.steering.selection` are bit-faithful but
slow for design-space sweeps that score millions of queue vectors.  This
module evaluates many requirement vectors at once with numpy broadcasting
— shifts become integer right-shifts on arrays, the tie-break key is the
same ``error << 6 | distance`` integer, and argmin with first-index ties
reproduces the hardware's candidate-0 preference exactly.

Equivalence with the scalar unit is property-tested; the speedup is
measured by ``benchmarks/bench_batch_throughput.py``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.fabric.configuration import FFU_COUNTS, PREDEFINED_CONFIGS, Configuration
from repro.isa.futypes import FU_TYPES
from repro.steering.error_metric import hardwired_shifts

__all__ = ["BatchSelectionUnit", "shift_for_counts"]

_DISTANCE_WIDTH = 6


def shift_for_counts(counts: np.ndarray) -> np.ndarray:
    """Vectorised Fig. 3(c): shift = 2 where count >= 4, 1 where >= 2, else 0.

    Counts are clamped to the 3-bit hardware domain first.
    """
    clamped = np.minimum(counts, 7)
    return np.where(clamped >= 4, 2, np.where(clamped >= 2, 1, 0))


class BatchSelectionUnit:
    """Evaluates the Fig. 2 stages 3-4 for N requirement vectors at once."""

    def __init__(
        self,
        configs: Sequence[Configuration] = PREDEFINED_CONFIGS,
        ffu_counts: dict | None = None,
    ) -> None:
        self.configs = tuple(configs)
        self.ffu_counts = FFU_COUNTS if ffu_counts is None else dict(ffu_counts)
        #: hard-wired shift matrix for the predefined candidates, (C, 5).
        self._config_shifts = np.array(
            [hardwired_shifts(c, self.ffu_counts) for c in self.configs],
            dtype=np.int64,
        )
        #: candidate total unit counts (fixed + reconfigurable), (C, 5).
        self._config_counts = np.array(
            [
                [c.count(t) + self.ffu_counts.get(t, 0) for t in FU_TYPES]
                for c in self.configs
            ],
            dtype=np.int64,
        )

    def errors(
        self, required: np.ndarray, current_counts: np.ndarray
    ) -> np.ndarray:
        """CEM of every candidate for every row.

        ``required``: (N, 5) int array of 3-bit counts.
        ``current_counts``: (5,) or (N, 5) live configured counts.
        Returns (N, 1 + C): current candidate first.
        """
        required = np.asarray(required, dtype=np.int64)
        if required.ndim != 2 or required.shape[1] != len(FU_TYPES):
            raise ConfigurationError(
                f"required must be (N, {len(FU_TYPES)}), got {required.shape}"
            )
        if np.any(required < 0) or np.any(required > 7):
            raise ConfigurationError("required counts must be 3-bit values")
        current = np.asarray(current_counts, dtype=np.int64)
        current = np.broadcast_to(current, required.shape)

        cur_shift = shift_for_counts(current)                     # (N, 5)
        cur_err = (required >> cur_shift).sum(axis=1)             # (N,)
        # (N, 1, 5) >> (C, 5) -> (N, C, 5)
        cfg_err = (required[:, None, :] >> self._config_shifts).sum(axis=2)
        return np.concatenate([cur_err[:, None], cfg_err], axis=1)

    def select(
        self, required: np.ndarray, current_counts: np.ndarray
    ) -> np.ndarray:
        """Two-bit selection per row, with the hardware tie-break.

        Ties resolve by smaller reconfiguration distance then lower index,
        implemented through the same ``error ‖ distance`` key the minimal-
        error selector compares (numpy argmin keeps the first minimum,
        matching candidate-0-wins)."""
        required = np.asarray(required, dtype=np.int64)
        current = np.broadcast_to(
            np.asarray(current_counts, dtype=np.int64), required.shape
        )
        errors = self.errors(required, current)                   # (N, 1+C)
        distance = np.abs(
            self._config_counts[None, :, :] - current[:, None, :]
        ).sum(axis=2)
        distance = np.minimum(distance, (1 << _DISTANCE_WIDTH) - 1)
        zeros = np.zeros((required.shape[0], 1), dtype=np.int64)
        distances = np.concatenate([zeros, distance], axis=1)
        keys = (errors << _DISTANCE_WIDTH) | distances
        return np.argmin(keys, axis=1)

    def agreement_with_exact(
        self, required: np.ndarray, current_counts: np.ndarray
    ) -> float:
        """Fraction of rows where the shift metric picks the exact-division
        winner (the vectorised Fig. 3 approximation study)."""
        required = np.asarray(required, dtype=np.float64)
        current = np.broadcast_to(
            np.asarray(current_counts, dtype=np.float64), required.shape
        )
        avails = np.concatenate(
            [current[:, None, :], np.broadcast_to(
                self._config_counts.astype(np.float64),
                (required.shape[0],) + self._config_counts.shape,
            )],
            axis=1,
        )  # (N, 1+C, 5)
        safe = np.where(avails <= 0, np.inf, avails)
        exact = np.where(
            avails <= 0, required[:, None, :] * 8.0, required[:, None, :] / safe
        ).sum(axis=2)
        exact_pick = np.argmin(exact, axis=1)
        approx_pick = np.argmin(
            self.errors(required.astype(np.int64), current.astype(np.int64)),
            axis=1,
        )
        return float(np.mean(exact_pick == approx_pick))
