"""Resource-requirement encoders: stage 2 of the selection unit (Fig. 2).

For each functional-unit type, a population counter counts how many of the
queue's one-hot unit-decoder outputs assert that type's bit, producing a
3-bit "required number of units" value.  With the paper's seven-entry
instruction queue the count can never exceed seven, so 3 bits suffice; the
encoder still saturates defensively for wider queues.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuits.encoders import popcount_tree
from repro.isa.futypes import FU_TYPES, NUM_FU_TYPES
from repro.utils.bitops import mask

__all__ = ["RequirementsEncoder"]


class RequirementsEncoder:
    """One-hot vectors -> per-type 3-bit required-unit counts."""

    def __init__(self, count_width: int = 3) -> None:
        self.count_width = count_width
        #: reused bit-column buffer so the per-cycle encode path
        #: allocates nothing beyond the returned counts tuple.
        self._scratch_column: list[int] = []

    def encode(self, onehots: Sequence[int]) -> tuple[int, ...]:
        """Count required units per type across the queue.

        ``onehots`` holds one one-hot vector per occupied queue entry (an
        empty queue is an empty sequence).  Returns a tuple of
        ``NUM_FU_TYPES`` counts in canonical type order, each saturated to
        ``count_width`` bits.
        """
        limit = mask(self.count_width)
        counts = []
        column = self._scratch_column
        for t in FU_TYPES:
            column.clear()
            for v in onehots:
                column.append((v >> t.bit_index) & 1)
            # popcount then saturate: with <= 7 entries this is exact
            raw = popcount_tree(column, out_width=self.count_width + 1)
            counts.append(min(raw, limit))
        return tuple(counts)

    def __call__(self, onehots: Sequence[int]) -> tuple[int, ...]:
        return self.encode(onehots)
