"""Unit decoders: the first stage of the selection unit (Fig. 2).

One decoder per instruction-queue entry retrieves the opcode of the entry
and emits a **one-hot** five-bit vector naming the functional-unit type the
instruction requires (bit 0 = INT_ALU ... bit 4 = FP_MDU, the Fig. 2
ordering).  These are the "pre-decoders" of the original architecture [7]:
they operate on the *binary* opcode field so that unmodified legacy
machine code drives the steering hardware.
"""

from __future__ import annotations

from repro.circuits.encoders import one_hot
from repro.isa.encoding import decode
from repro.isa.futypes import NUM_FU_TYPES, FUType
from repro.isa.instruction import Instruction

__all__ = ["UnitDecoder"]


class UnitDecoder:
    """Opcode -> one-hot functional-unit-type vector."""

    #: width of the output vector (five unit types).
    WIDTH = NUM_FU_TYPES

    def decode_instruction(self, instr: Instruction) -> int:
        """One-hot vector for a decoded instruction."""
        return one_hot(instr.fu_type.bit_index, self.WIDTH)

    def decode_word(self, word: int) -> int:
        """One-hot vector straight from a 32-bit binary instruction word.

        This is the legacy-compatibility path: the decoder inspects only
        the opcode field, exactly as the hardware pre-decoder would.
        """
        return self.decode_instruction(decode(word))

    def __call__(self, item: "Instruction | int") -> int:
        if isinstance(item, Instruction):
            return self.decode_instruction(item)
        return self.decode_word(item)

    @staticmethod
    def fu_type_of(onehot: int) -> FUType:
        """Invert a one-hot vector back to its unit type (for tracing)."""
        for t in FUType:
            if onehot == 1 << t.bit_index:
                return t
        raise ValueError(f"not a one-hot unit vector: {onehot:#07b}")
