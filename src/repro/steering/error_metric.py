"""Configuration-error-metric (CEM) generators: Fig. 3.

Each generator scores how well one candidate configuration matches the
queue's requirements::

    error(c) = sum over types t of  required[t] >> shift(available_c[t])

i.e. the required count of each type divided — approximately, by a barrel
shifter — by the candidate's available count of that type (fixed + its
reconfigurable units) rounded down to a power of two.  Intuitively the
term is "queue-drain cycles demanded of type t under candidate c"; the
best candidate minimises the sum.

For the three predefined configurations the shift amounts are **hard-wired**
(divide by 4, 2 or 1); for the current configuration the shifts come from
the upper two bits of the live configured-unit counts (Fig. 3(c),
:func:`repro.circuits.shifters.cem_shift_control`).  Terms are summed by a
3-bit five-operand adder into a 6-bit metric.

:func:`exact_error` is the reference metric with true division, used by the
E-CEM ablation to quantify what the shifter approximation costs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuits.adders import multi_operand_add
from repro.circuits.shifters import (
    COUNT_WIDTH,
    SUM_WIDTH,
    barrel_shift_right,
    cem_shift_control,
    hardwired_shifts,
)
from repro.errors import ConfigurationError
from repro.fabric.configuration import FFU_COUNTS, Configuration
from repro.isa.futypes import FU_TYPES, NUM_FU_TYPES

# COUNT_WIDTH, SUM_WIDTH and hardwired_shifts live with the shifter
# hardware in repro.circuits.shifters (steering sits above circuits in the
# layer DAG); re-exported here because they are part of the CEM interface.
__all__ = [
    "COUNT_WIDTH",
    "SUM_WIDTH",
    "hardwired_shifts",
    "cem_error",
    "exact_error",
    "ErrorMetricGenerator",
]


def cem_error(required: Sequence[int], shifts: Sequence[int]) -> int:
    """Evaluate one CEM generator (Fig. 3(b)).

    ``required`` are the five 3-bit required counts; ``shifts`` the five
    shift amounts (hard-wired or from Fig. 3(c)).  Returns the 6-bit error.
    """
    if len(required) != NUM_FU_TYPES or len(shifts) != NUM_FU_TYPES:
        raise ConfigurationError(
            f"CEM needs {NUM_FU_TYPES} required counts and shifts, "
            f"got {len(required)} and {len(shifts)}"
        )
    terms = [
        barrel_shift_right(req, shift, COUNT_WIDTH)
        for req, shift in zip(required, shifts)
    ]
    return multi_operand_add(terms, COUNT_WIDTH, SUM_WIDTH)


def exact_error(required: Sequence[int], available: Sequence[int]) -> float:
    """Reference metric with true division: sum_t required[t] / available[t].

    ``available`` counts include the fixed units, so every entry is >= 1
    for the shipped architecture; a zero available count contributes
    ``required`` cycles per instruction (the FFU-less pathological case)
    via a large penalty.
    """
    total = 0.0
    for req, avail in zip(required, available):
        if avail <= 0:
            total += float(req) * 8.0  # no unit at all: heavy penalty
        else:
            total += req / avail
    return total


class ErrorMetricGenerator:
    """One Fig. 3 CEM generator bound to a candidate configuration.

    For a *predefined* candidate pass ``config``; the shifts are hard-wired
    at construction.  For the *current* configuration construct with
    ``config=None`` and pass the live counts to :meth:`error`.
    """

    def __init__(
        self,
        config: Configuration | None = None,
        ffu_counts: dict | None = None,
    ) -> None:
        self.config = config
        self.ffu_counts = FFU_COUNTS if ffu_counts is None else ffu_counts
        self._shifts = (
            hardwired_shifts(config, self.ffu_counts) if config is not None else None
        )

    @property
    def is_current(self) -> bool:
        return self.config is None

    def shifts_for(self, current_counts: Sequence[int] | None = None) -> tuple[int, ...]:
        """The shift amounts this generator applies."""
        if self._shifts is not None:
            return self._shifts
        if current_counts is None:
            raise ConfigurationError(
                "the current-configuration generator needs live unit counts"
            )
        return tuple(cem_shift_control(min(c, 7)) for c in current_counts)

    def error(
        self,
        required: Sequence[int],
        current_counts: Sequence[int] | None = None,
    ) -> int:
        """The 6-bit configuration error for the given requirements."""
        return cem_error(required, self.shifts_for(current_counts))

    def available_counts(
        self, current_counts: Sequence[int] | None = None
    ) -> tuple[int, ...]:
        """Unit counts (fixed + reconfigurable) this candidate provides."""
        if self.config is not None:
            return tuple(
                self.config.count(t) + self.ffu_counts.get(t, 0) for t in FU_TYPES
            )
        if current_counts is None:
            raise ConfigurationError(
                "the current-configuration generator needs live unit counts"
            )
        return tuple(current_counts)
