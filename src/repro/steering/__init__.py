"""Configuration steering: the paper's primary contribution.

The configuration manager watches the instruction queue and steers the
reconfigurable fabric toward the best-matched of four candidate
configurations — the *current* configuration plus three predefined steering
configurations (Table 1).  It is built exactly as Fig. 2 specifies, in four
combinational stages:

1. **unit decoders** (:mod:`repro.steering.decoders`) — one per queue entry,
   emitting a one-hot vector of the functional-unit type required;
2. **resource-requirement encoders** (:mod:`repro.steering.requirements`) —
   population counters producing a 3-bit required count per type;
3. **configuration-error-metric generators**
   (:mod:`repro.steering.error_metric`) — Fig. 3 barrel-shifter
   approximate dividers summed by a 3-bit five-operand adder;
4. **minimal-error selection** (:mod:`repro.steering.selection`) — picks
   the candidate with the smallest error, ties resolved toward the least
   reconfiguration (the current configuration always wins ties).

The **configuration loader** (:mod:`repro.steering.loader`) then diffs the
chosen configuration against the resource-allocation vector and partially
reconfigures only the RFU slots that are not busy.  The
:class:`~repro.steering.manager.ConfigurationManager` wires all of this to
the fabric.
"""

from repro.steering.decoders import UnitDecoder
from repro.steering.error_metric import (
    ErrorMetricGenerator,
    cem_error,
    exact_error,
    hardwired_shifts,
)
from repro.steering.loader import ConfigurationLoader, LoadPlan
from repro.steering.manager import ConfigurationManager, ManagerStats
from repro.steering.requirements import RequirementsEncoder
from repro.steering.selection import ConfigurationSelectionUnit, SelectionResult

__all__ = [
    "UnitDecoder",
    "RequirementsEncoder",
    "ErrorMetricGenerator",
    "cem_error",
    "exact_error",
    "hardwired_shifts",
    "ConfigurationSelectionUnit",
    "SelectionResult",
    "ConfigurationLoader",
    "LoadPlan",
    "ConfigurationManager",
    "ManagerStats",
]
