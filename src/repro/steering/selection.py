"""The four-stage configuration-selection unit (Fig. 2).

Inputs each cycle: the instructions in the queue that are ready to execute,
and the number of units of each type currently configured (from the
configuration loader).  Output: a two-bit value selecting which of the four
candidates — candidate 0 is always the current configuration, candidates
1..3 the predefined steering configurations — should begin loading.

Tie-breaking follows §3.1: among equal error metrics the unit picks the
candidate requiring the least reconfiguration, which in particular means
the current configuration (distance zero) always wins its ties.  The
comparison is implemented as a single magnitude compare on the
concatenated key ``error ‖ distance`` so it remains one comparator tree in
hardware.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.circuits.comparators import minimum_index
from repro.fabric.configuration import FFU_COUNTS, PREDEFINED_CONFIGS, Configuration
from repro.isa.futypes import FU_TYPES
from repro.isa.instruction import Instruction
from repro.steering.decoders import UnitDecoder
from repro.steering.error_metric import SUM_WIDTH, ErrorMetricGenerator, exact_error
from repro.steering.requirements import RequirementsEncoder

__all__ = ["SelectionResult", "ConfigurationSelectionUnit"]

#: bits used for the reconfiguration-distance field of the tie-break key.
_DISTANCE_WIDTH = 6

#: maximum number of memoised select() evaluations (LRU-evicted beyond).
_MEMO_CAPACITY = 16384


@dataclass(frozen=True, slots=True)
class SelectionResult:
    """Outcome of one selection-unit evaluation."""

    #: two-bit output: 0 = keep the current configuration, 1..3 = begin
    #: steering toward that predefined configuration.
    index: int
    #: the chosen predefined configuration, or None when index == 0.
    config: Configuration | None
    #: 6-bit error metric of every candidate, current first.
    errors: tuple[int, ...]
    #: the stage-2 required-unit counts that drove the decision.
    required: tuple[int, ...]

    @property
    def keeps_current(self) -> bool:
        return self.index == 0


class ConfigurationSelectionUnit:
    """Fig. 2: decoders -> encoders -> CEM generators -> minimal-error select."""

    def __init__(
        self,
        configs: Sequence[Configuration] = PREDEFINED_CONFIGS,
        ffu_counts: dict | None = None,
        queue_size: int = 7,
        use_exact_metric: bool = False,
    ) -> None:
        self.configs = tuple(configs)
        self.ffu_counts = FFU_COUNTS if ffu_counts is None else dict(ffu_counts)
        self.queue_size = queue_size
        self.use_exact_metric = use_exact_metric
        self.decoder = UnitDecoder()
        self.encoder = RequirementsEncoder()
        self._current_gen = ErrorMetricGenerator(None, self.ffu_counts)
        self._config_gens = tuple(
            ErrorMetricGenerator(c, self.ffu_counts) for c in self.configs
        )
        # select() is a pure function of the queue's unit types and the
        # current counts, so its (gate-level-faithful, hence expensive)
        # evaluation is memoised: identical inputs return the identical
        # SelectionResult without re-simulating the adders and shifters.
        # Bounded by LRU eviction: recency order is maintained by
        # move-to-end on every hit, and at capacity the single coldest
        # entry is dropped — a long phased workload keeps its hot window
        # states cached instead of losing the whole memo to a reset.
        self._memo: OrderedDict[tuple, SelectionResult] = OrderedDict()

    # ------------------------------------------------------------- stages
    def required_counts(
        self, queue: Sequence[Instruction | int]
    ) -> tuple[int, ...]:
        """Stages 1+2: decode the queue and count required units per type."""
        window = list(queue)[: self.queue_size]
        onehots = [self.decoder(item) for item in window]
        return self.encoder(onehots)

    def candidate_errors(
        self,
        required: Sequence[int],
        current_counts: Sequence[int],
    ) -> tuple[int, ...]:
        """Stage 3: the error metric of every candidate, current first."""
        if self.use_exact_metric:
            # ablation mode: scaled exact division quantised to the same
            # 6-bit range the hardware metric occupies.
            cur = exact_error(required, self._current_gen.available_counts(current_counts))
            errs = [cur] + [
                exact_error(required, g.available_counts()) for g in self._config_gens
            ]
            limit = (1 << SUM_WIDTH) - 1
            return tuple(min(limit, round(e)) for e in errs)
        current = self._current_gen.error(required, current_counts)
        predefined = [g.error(required) for g in self._config_gens]
        return tuple([current] + predefined)

    def _distances(self, current_counts: Sequence[int]) -> tuple[int, ...]:
        """Reconfiguration distance of every candidate from the current state.

        Measured as the L1 distance between unit-count vectors (a cheap
        proxy for the number of slots the loader would rewrite); the
        current configuration is at distance zero by construction.
        """
        limit = (1 << _DISTANCE_WIDTH) - 1
        out = [0]
        for g in self._config_gens:
            target = g.available_counts()
            d = sum(abs(a - b) for a, b in zip(target, current_counts))
            out.append(min(d, limit))
        return tuple(out)

    # ------------------------------------------------------------ end-to-end
    # repro: allow[HOT001] -- the memo key must be a fresh tuple (it is
    # stored in the memo), and everything past the memo hit is the miss
    # path: those allocations are exactly what the memo amortises away
    def select(
        self,
        queue: Sequence[Instruction | int],
        current_counts: Sequence[int],
    ) -> SelectionResult:
        """Run all four stages and return the two-bit selection.

        ``current_counts`` is the per-type number of units currently
        configured (fixed + loaded reconfigurable), in canonical type order
        — the loader input shown entering Fig. 2 from the right.
        """
        if len(current_counts) != len(FU_TYPES):
            raise ValueError(
                f"current_counts needs {len(FU_TYPES)} entries, got {len(current_counts)}"
            )
        window = queue[: self.queue_size]
        memo_key = (
            tuple(
                item.fu_type.bit_index
                if isinstance(item, Instruction)
                else ("word", item)
                for item in window
            ),
            tuple(current_counts),
        )
        cached = self._memo.get(memo_key)
        if cached is not None:
            self._memo.move_to_end(memo_key)
            return cached
        # repro: cold-call -- memo-miss path: amortised by the LRU memo above
        required = self.required_counts(window)
        # repro: cold-call -- memo-miss path: amortised by the LRU memo above
        errors = self.candidate_errors(required, current_counts)
        # repro: cold-call -- memo-miss path: amortised by the LRU memo above
        distances = self._distances(current_counts)
        keys = [
            (e << _DISTANCE_WIDTH) | d for e, d in zip(errors, distances)
        ]
        index = minimum_index(keys, SUM_WIDTH + _DISTANCE_WIDTH)
        config = None if index == 0 else self.configs[index - 1]
        result = SelectionResult(
            index=index, config=config, errors=errors, required=required
        )
        if len(self._memo) >= _MEMO_CAPACITY:
            self._memo.popitem(last=False)  # evict the least recently used
        self._memo[memo_key] = result
        return result
