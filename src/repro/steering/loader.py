"""The configuration loader (§3.2).

Once the selection unit chooses a steering configuration, the loader diffs
it against the resource-allocation vector and reconfigures, one unit per
configuration-bus transfer, only the RFU slots that are **not busy**:

* units the target also wants are kept in place (an RFU already
  implementing the specified type is never reloaded);
* units the target does not want are evicted — but only when idle; a unit
  executing a multi-cycle instruction keeps its slots until it retires
  (and by then a different target may have been selected);
* units still missing are placed into contiguous runs of free/evictable
  slots, largest units first (they are the hardest to place).

Because only idle slots change, the active configuration is generally a
*hybrid overlap* of steering configurations — exactly the behaviour the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.configuration import Configuration
from repro.fabric.fabric import Fabric
from repro.isa.futypes import FU_TYPES, FUType

__all__ = ["LoadPlan", "ConfigurationLoader"]


def _slot_cost_of(fu_type: FUType) -> int:
    """Sort key for the placement order (largest units are hardest to
    place); a named function so the per-cycle path allocates no closure."""
    return fu_type.slot_cost


@dataclass(frozen=True, slots=True)
class LoadPlan:
    """One reconfiguration the loader has initiated."""

    head: int
    fu_type: FUType
    evicted: tuple[FUType, ...]
    latency: int


@dataclass(slots=True)
class _RunCandidate:
    head: int
    evictions: int
    #: total slot cost of *wanted* (non-surplus) units the run evicts.
    wanted_cost: int


class ConfigurationLoader:
    """Steers the fabric toward the selected configuration, one load per bus
    transfer, never touching a busy slot."""

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self._target: Configuration | None = None
        #: completed loads, for statistics/tracing.
        self.history: list[LoadPlan] = []

    # ------------------------------------------------------------- target
    @property
    def target(self) -> Configuration | None:
        return self._target

    def set_target(self, config: Configuration | None) -> None:
        """Select the configuration to steer toward (None = keep current)."""
        self._target = config

    # ------------------------------------------------------------- queries
    def current_counts(self) -> tuple[int, ...]:
        """Units currently configured per type, fixed + loaded reconfigurable.

        This is the Fig. 2 input the loader feeds back to the selection
        unit's current-configuration CEM generator.
        """
        return self.fabric.counts_tuple()

    def _have(self) -> dict[FUType, int]:
        """Loaded + in-flight units per type (RFU portion only)."""
        have: dict[FUType, int] = {}
        for t, n in self.fabric.rfus.counts().items():
            have[t] = n
        for t, n in self.fabric.rfus.pending_counts().items():
            have[t] = have.get(t, 0) + n
        return have

    def missing_units(self) -> list[FUType]:
        """Unit types the target still lacks, largest slot cost first."""
        if self._target is None:
            return []
        have = self._have()
        missing: list[FUType] = []
        for t in FU_TYPES:
            deficit = self._target.count(t) - have.get(t, 0)
            missing.extend([t] * max(0, deficit))
        missing.sort(key=_slot_cost_of, reverse=True)
        return missing

    def _surplus(self) -> dict[FUType, int]:
        """Units per type beyond what the target wants (eviction budget)."""
        if self._target is None:
            return {}
        have = self._have()
        surplus: dict[FUType, int] = {}
        for t in FU_TYPES:
            surplus[t] = max(0, have.get(t, 0) - self._target.count(t))
        return surplus

    def _find_run(
        self, fu_type: FUType, max_wanted_cost: int = 0
    ) -> _RunCandidate | None:
        """Best placement for one ``fu_type`` unit: a contiguous slot run
        that is loadable now and evicts as little as possible.

        With ``max_wanted_cost == 0`` (the normal pass) the run may only
        evict *surplus* units.  A positive budget enables the
        defragmentation fallback: the run may additionally relocate wanted
        units totalling at most that many slots — they re-enter the
        missing list and are re-placed later.  Keeping the budget strictly
        below the placed unit's cost makes total missing slot-cost
        monotonically decreasing, so relocation cannot livelock.
        """
        rfus = self.fabric.rfus
        cost = fu_type.slot_cost
        surplus = self._surplus()
        best: _RunCandidate | None = None
        for head in range(rfus.n_slots - cost + 1):
            if not rfus.range_reconfigurable(head, fu_type):
                continue
            # units this run would evict, counted once each (dict keyed by
            # head slot doubles as an insertion-ordered set)
            evict_heads: dict[int, None] = {}
            for i in range(head, head + cost):
                h = rfus.head_of(i)
                if h is not None:
                    evict_heads[h] = None
            per_type: dict[FUType, int] = {}
            for h in evict_heads:
                t = rfus.slots[h].unit.fu_type
                per_type[t] = per_type.get(t, 0) + 1
            wanted_cost = 0
            for t, n in per_type.items():
                wanted_cost += max(0, n - surplus.get(t, 0)) * t.slot_cost
            if wanted_cost > max_wanted_cost:
                continue
            candidate = _RunCandidate(
                head=head, evictions=len(evict_heads), wanted_cost=wanted_cost
            )
            if best is None or (candidate.wanted_cost, candidate.evictions) < (
                best.wanted_cost,
                best.evictions,
            ):
                best = candidate
        return best

    # ------------------------------------------------------------- stepping
    def step(self) -> LoadPlan | None:
        """Advance the steering by at most one reconfiguration.

        Called once per cycle by the configuration manager.  Returns the
        :class:`LoadPlan` started this cycle, or None when nothing can (or
        needs to) change: target already satisfied, bus busy, or every
        useful slot busy executing.
        """
        if self._target is None or not self.fabric.rfus.bus_free:
            return None
        missing = self.missing_units()
        for fu_type in missing:
            run = self._find_run(fu_type)
            if run is not None:
                return self._start_load(fu_type, run)
        # defragmentation fallback: nothing fits without relocating a
        # wanted unit — allow relocations strictly smaller than the unit
        # being placed (see _find_run's no-livelock argument)
        for fu_type in missing:
            if fu_type.slot_cost <= 1:
                continue  # a 1-slot unit can't buy progress by relocation
            run = self._find_run(fu_type, max_wanted_cost=fu_type.slot_cost - 1)
            if run is not None:
                return self._start_load(fu_type, run)
        return None

    def _start_load(self, fu_type: FUType, run: _RunCandidate) -> LoadPlan:
        rfus = self.fabric.rfus
        evict_heads: dict[int, FUType] = {}
        for i in range(run.head, run.head + fu_type.slot_cost):
            h = rfus.head_of(i)
            if h is not None:
                evict_heads[h] = rfus.slots[h].unit.fu_type
        latency = rfus.begin_reconfigure(run.head, fu_type)
        plan = LoadPlan(
            head=run.head,
            fu_type=fu_type,
            evicted=tuple(evict_heads.values()),
            latency=latency,
        )
        self.history.append(plan)
        return plan

    @property
    def satisfied(self) -> bool:
        """True when the target (if any) is fully loaded or in flight."""
        return not self.missing_units()
