#!/usr/bin/env python3
"""Quickstart: assemble a program and run it on the reconfigurable
superscalar processor with configuration steering.

Run with::

    python examples/quickstart.py
"""

from repro import assemble, fixed_superscalar, steering_processor, steering_table

PROGRAM = """
    .data
    vec:    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
    result: .word 0
    .text
    main:   li   x6, 32         # outer repetitions (give steering time)
            li   x3, 0          # accumulator
    outer:  li   x1, 0          # byte offset
            li   x2, 64         # end (16 words)
    loop:   lw   x4, vec(x1)
            mul  x5, x4, x4     # sum of squares
            add  x3, x3, x5
            addi x1, x1, 4
            blt  x1, x2, loop
            addi x6, x6, -1
            bne  x6, x0, outer
            sw   x3, result(x0)
            halt
"""


def main() -> None:
    program = assemble(PROGRAM)
    print("The architecture's steering basis (Table 1):")
    print(steering_table())
    print()

    # run with the paper's configuration steering ...
    steer = steering_processor(program)
    steer_result = steer.run()
    # ... and on the fixed-units-only baseline
    ffu_result = fixed_superscalar(program).run()

    print("=== steering processor ===")
    print(steer_result.summary())
    print()
    print("=== fixed functional units only ===")
    print(ffu_result.summary())
    print()

    result_addr = program.data_labels["result"]
    print(f"sum of squares  : {steer.dmem.peek_word(result_addr)}")
    expected = 32 * sum(v * v for v in [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3])
    assert steer.dmem.peek_word(result_addr) == expected
    speedup = steer_result.ipc / ffu_result.ipc
    print(f"steering speedup over FFU-only: {speedup:.2f}x")


if __name__ == "__main__":
    main()
