#!/usr/bin/env python3
"""Phase-adaptive steering: watch the fabric reconfigure as a workload
moves through integer, memory and floating-point phases.

Prints an ASCII timeline of the selection-unit decisions and every partial
reconfiguration the loader starts, then compares steering against each
static configuration on the same program.

Run with::

    python examples/phased_workload.py
"""

from repro import PREDEFINED_CONFIGS, ProcessorParams, steering_processor
from repro.core.baselines import fixed_superscalar, static_processor
from repro.workloads.phases import phased_program
from repro.workloads.synthetic import FP_MIX, INT_MIX, MEM_MIX

PARAMS = ProcessorParams(reconfig_latency=8)
PHASES = [(INT_MIX, 60), (MEM_MIX, 60), (FP_MIX, 60)]

_GLYPH = {0: ".", 1: "I", 2: "M", 3: "F"}  # current / integer / memory / floating


def timeline(selections: list[int], width: int = 72) -> str:
    """Compress the per-cycle selection trace into one glyph per bucket."""
    if not selections:
        return ""
    bucket = max(1, len(selections) // width)
    out = []
    for i in range(0, len(selections), bucket):
        window = selections[i : i + bucket]
        # show the most-steered-to candidate in the bucket ('.' = settled)
        steered = [s for s in window if s != 0]
        out.append(_GLYPH[max(set(steered), key=steered.count)] if steered else ".")
    return "".join(out)


def main() -> None:
    program = phased_program(PHASES, seed=3)
    print(f"workload: {len(program)} static instructions, phases "
          f"{' -> '.join(mix.name for mix, _ in PHASES)}\n")

    proc = steering_processor(program, PARAMS, record_trace=True)
    result = proc.run()
    trace = proc.policy.manager.trace

    print("steering timeline (one glyph per ~bucket of cycles):")
    print("  I=steer-to-integer  M=memory  F=floating  .=keep current")
    print(" ", timeline([t.selection for t in trace]))
    print()
    print("partial reconfigurations (cycle: unit loaded @ slot):")
    for t in trace:
        if t.load is not None:
            evicted = f" evicting {[e.short_name for e in t.load.evicted]}" if t.load.evicted else ""
            print(f"  cycle {t.cycle:5d}: {t.load.fu_type.short_name:6s} "
                  f"@ slot {t.load.head}{evicted}")
    print()

    rows = [("steering", result.ipc)]
    rows.append(("ffu-only", fixed_superscalar(program, PARAMS).run().ipc))
    for cfg in PREDEFINED_CONFIGS:
        ipc = static_processor(program, cfg, PARAMS).run().ipc
        rows.append((f"static-{cfg.name}", ipc))
    print("IPC on the full phased workload:")
    for name, ipc in sorted(rows, key=lambda r: -r[1]):
        bar = "#" * int(ipc * 40)
        print(f"  {name:16s} {ipc:.3f}  {bar}")


if __name__ == "__main__":
    main()
