#!/usr/bin/env python3
"""Legacy binary compatibility: the paper's core motivation.

The processor executes unmodified machine code — no recompilation, no
hardware-extraction pass (the shortcoming the paper calls out in SPYDER
and PRISC).  This example assembles a program once, throws the *source*
away, and runs the raw 32-bit words on three differently configured
processors, disassembling them on the way in.

Run with::

    python examples/legacy_binary.py
"""

from repro import Opcode, Program, assemble, disassemble, steering_processor
from repro.core.baselines import fixed_superscalar
from repro.isa.encoding import decode

SOURCE = """
    .data
    xs:  .float 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
    acc: .float 0.0
    .text
    main:   li   x1, 0
            li   x2, 32
            flw  f1, acc(x0)
    loop:   flw  f2, xs(x1)
            fmul f3, f2, f2
            fadd f1, f1, f3
            addi x1, x1, 4
            blt  x1, x2, loop
            fsw  f1, acc(x0)
            halt
"""


def main() -> None:
    # compile once, keep only the binary image + initial data
    compiled = assemble(SOURCE)
    binary_words = compiled.to_binary()
    data_image = bytes(compiled.data)

    print(f"legacy binary: {len(binary_words)} words")
    for pc, word in enumerate(binary_words):
        print(f"  {pc:3d}: {word:#010x}   {disassemble([word])[0]}")
    print()

    # reconstruct a Program purely from the binary (what a reconfigurable
    # processor booting legacy code would see)
    legacy = Program(
        instructions=[decode(w) for w in binary_words],
        labels={"main": 0},
        data=bytearray(data_image),
        data_labels=dict(compiled.data_labels),
    )

    for make, label in ((steering_processor, "steering"), (fixed_superscalar, "ffu-only")):
        proc = make(legacy)
        result = proc.run()
        acc = proc.dmem.peek_float(legacy.data_labels["acc"])
        print(f"{label:10s}: sum of squares = {acc}  "
              f"(IPC {result.ipc:.3f}, {result.cycles} cycles)")
        assert acc == sum(float(v) ** 2 for v in range(1, 9))

    print("\nSame binary, same architectural result, different hardware "
          "underneath - binary compatibility holds.")


if __name__ == "__main__":
    main()
