#!/usr/bin/env python3
"""Cycle-by-cycle pipeline and fabric trace.

Runs a short mixed workload with event recording on and prints the fabric
occupancy timeline: watch units being loaded into slots (``*`` while the
configuration bus writes them), executing (lowercase) and idling
(uppercase), alongside fetch/dispatch/issue/retire counts per cycle.

Run with::

    python examples/pipeline_trace.py
"""

from repro import PaperSteering, Processor, ProcessorParams, assemble
from repro.core.tracing import render_fabric_timeline

PROGRAM = """
    .data
    xs:  .float 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5
    acc: .float 0.0
    .text
    main:   li   x1, 0
            li   x2, 32
            li   x5, 0
            flw  f1, acc(x0)
    loop:   flw  f2, xs(x1)
            fmul f3, f2, f2
            fadd f1, f1, f3
            lw   x4, xs(x1)
            xor  x5, x5, x4
            addi x1, x1, 4
            blt  x1, x2, loop
            fsw  f1, acc(x0)
            halt
"""


def main() -> None:
    program = assemble(PROGRAM)
    proc = Processor(
        program,
        params=ProcessorParams(reconfig_latency=4),
        policy=PaperSteering(record_trace=True),
        record_events=True,
    )
    result = proc.run()

    print("slot glyphs: A/M/L/F/D = IALU/IMDU/LSU/FPALU/FPMDU "
          "(lowercase = executing), * = reconfiguring, . = empty")
    print("columns: F)etched D)ispatched I)ssued R)etired, sel = steering pick\n")
    print(render_fabric_timeline(proc.events, stride=2, max_rows=60))
    print()
    print(result.summary())
    print()
    acc = proc.dmem.peek_float(program.data_labels["acc"])
    print(f"result: sum of squares = {acc:.4f}")


if __name__ == "__main__":
    main()
