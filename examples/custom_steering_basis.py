#!/usr/bin/env python3
"""Designing a custom steering basis for a domain-specific processor.

Section 5 of the paper proposes formulating an "optimal basis" of steering
configurations.  This example shows the API for doing exactly that: define
your own :class:`Configuration` set (validated against the 8-slot budget),
hand it to the steering policy, and measure the result against the paper's
general-purpose basis on *your* workload — here, a DSP-flavoured mix of
FIR filtering and SAXPY.

Run with::

    python examples/custom_steering_basis.py
"""

from repro import Configuration, FUType, PREDEFINED_CONFIGS, ProcessorParams
from repro.core.policies import PaperSteering
from repro.core.processor import Processor
from repro.workloads.kernels import fir_filter, saxpy

# A DSP shop knows its code is FP-multiply + memory bound; it trades the
# general-purpose integer configuration for two FP-heavy ones.
DSP_BASIS = (
    Configuration(
        "fp-mul", {FUType.FP_MDU: 2, FUType.INT_ALU: 1, FUType.LSU: 1}
    ).validate(),
    Configuration(
        "fp-stream", {FUType.FP_ALU: 1, FUType.LSU: 4, FUType.INT_ALU: 1}
    ).validate(),
    Configuration(
        "fp-balanced", {FUType.FP_ALU: 1, FUType.FP_MDU: 1, FUType.LSU: 2}
    ).validate(),
)

PARAMS = ProcessorParams(reconfig_latency=8)


def run_with_basis(program, basis, label: str) -> float:
    policy = PaperSteering(configs=basis)
    result = Processor(program, params=PARAMS, policy=policy).run()
    print(f"  {label:12s} IPC = {result.ipc:.3f} "
          f"(reconfigurations: {result.reconfigurations})")
    return result.ipc


def main() -> None:
    for kernel in (fir_filter(n=64), saxpy(n=96)):
        print(f"{kernel.name}: {kernel.description}")
        paper = run_with_basis(kernel.program, PREDEFINED_CONFIGS, "paper basis")
        custom = run_with_basis(kernel.program, DSP_BASIS, "DSP basis")
        print(f"  custom-basis gain: {custom / paper - 1:+.1%}\n")

    print("Slot budgets of the custom basis (must fit the 8-slot fabric):")
    for cfg in DSP_BASIS:
        print(f"  {cfg}: {cfg.slot_usage}/8 slots")

    print(
        "\nLesson: watch the reconfiguration counts above.  Basis members\n"
        "that *overlap* in the unit types they provide can alternate as the\n"
        "minimal-error winner while the fabric is mid-steer, so the loader\n"
        "thrashes (many reconfigurations, configuration bus saturated) and\n"
        "IPC can drop below the general-purpose basis.  The paper's advice\n"
        "to keep the basis 'relatively orthogonal' (Section 5) is exactly\n"
        "the guard against this failure mode - orthogonal members make the\n"
        "settled hybrid tie the winner, which stops further reconfiguration."
    )


if __name__ == "__main__":
    main()
