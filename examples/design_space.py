#!/usr/bin/env python3
"""Formulating an optimal steering basis (§5 of the paper).

The paper closes with two open problems; this example walks the first:
given a *workload population*, design the three predefined steering
configurations.  The repro library frames it as clustering in
configuration space (``repro.evaluation.basis_search``):

1. profile the population — sample the per-window unit-demand vectors the
   Fig. 2 requirement encoders would see;
2. run a k-means-style search: assign each demand sample to its
   best-serving configuration, re-synthesise each configuration greedily
   from its cluster's mean demand, repeat;
3. validate end-to-end: steer a processor with the designed basis.

Run with::

    python examples/design_space.py
"""

from repro import PREDEFINED_CONFIGS, ProcessorParams, PaperSteering, Processor
from repro.evaluation.basis_search import demand_profile, design_basis, profile_cost
from repro.workloads.kernels import all_kernels
from repro.workloads.kernels_extra import extended_kernels

PARAMS = ProcessorParams(reconfig_latency=8)


def _design_for(name: str, kernels) -> None:
    print(f"=== designing a basis for the {name} population "
          f"({len(kernels)} kernels) ===")
    profile = demand_profile([k.program for k in kernels])
    print(f"  {len(profile)} demand samples "
          f"(7-instruction windows over the dynamic traces)")

    paper_cost = profile_cost(profile, PREDEFINED_CONFIGS)
    designed, designed_cost = design_basis(profile, seed=1)

    print(f"  paper basis profile cost   : {paper_cost:.4f}")
    print(f"  designed basis profile cost: {designed_cost:.4f} "
          f"({(1 - designed_cost / paper_cost):+.1%})")
    for cfg in designed:
        print(f"     {cfg}")

    wins = 0
    for kernel in kernels:
        ipcs = {}
        for label, basis in (("paper", PREDEFINED_CONFIGS), ("designed", tuple(designed))):
            proc = Processor(
                kernel.program, params=PARAMS, policy=PaperSteering(configs=basis)
            )
            result = proc.run()
            kernel.verify(proc.dmem)  # correctness always
            ipcs[label] = result.ipc
        marker = "+" if ipcs["designed"] >= ipcs["paper"] - 1e-9 else "-"
        wins += marker == "+"
        print(f"     {kernel.name:17s} paper {ipcs['paper']:.3f}  "
              f"designed {ipcs['designed']:.3f}  {marker}")
    print(f"  designed basis matches or beats paper on {wins}/{len(kernels)} "
          f"kernels of its population\n")


def main() -> None:
    everything = all_kernels() + extended_kernels()

    # 1. the general-purpose population: the search keeps (or marginally
    #    refines) the paper's hand-designed basis — evidence it is already
    #    near a local optimum of the clustering objective.
    _design_for("general-purpose", everything[:8])

    # 2. a specialised population (an integer-only embedded deployment):
    #    the search drops the floating-point member entirely and reinvests
    #    those six slots in integer/memory capacity.
    integer_population = [
        k for k in everything
        if k.name in ("checksum", "sum_reduction", "dot_product", "memcpy",
                       "bubble_sort", "histogram", "fibonacci",
                       "mandelbrot_point", "string_length")
    ]
    _design_for("integer-embedded", integer_population)


if __name__ == "__main__":
    main()
